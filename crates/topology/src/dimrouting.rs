//! Dimension-order (e-cube) routing for digit-addressed networks.
//!
//! BFS gives *some* shortest path; real k-ary n-cube and hypercube
//! routers use dimension-order routing — correct digits one dimension
//! at a time, taking the shorter ring direction. These paths are
//! shortest too, but deterministic and structured, so the
//! wire-budget-along-route metric can be evaluated against the routes
//! hardware would take.

use crate::graph::{EdgeId, NodeId};
use crate::karyn::KaryNCube;
use crate::routing::RoutePath;
use std::collections::HashMap;

/// A dimension-order router over a k-ary n-cube (binary case = e-cube
/// routing on the hypercube). Precomputes an edge index for O(1) hop
/// lookups.
pub struct DimensionOrderRouter<'a> {
    cube: &'a KaryNCube,
    edge_of: HashMap<(NodeId, NodeId), EdgeId>,
}

impl<'a> DimensionOrderRouter<'a> {
    /// Build the router (O(E) setup).
    pub fn new(cube: &'a KaryNCube) -> Self {
        let mut edge_of = HashMap::with_capacity(cube.graph.edge_count() * 2);
        for e in cube.graph.edge_ids() {
            let (u, v) = cube.graph.endpoints(e);
            edge_of.insert((u, v), e);
            edge_of.insert((v, u), e);
        }
        DimensionOrderRouter { cube, edge_of }
    }

    /// Route `src → dst`, correcting digit 0 first, then digit 1, ….
    /// Within a dimension the shorter ring direction is taken (ties go
    /// to the +1 direction). The result is a shortest path.
    pub fn route(&self, src: NodeId, dst: NodeId) -> RoutePath {
        let k = self.cube.k as i64;
        let addr = &self.cube.addr;
        let mut nodes = vec![src];
        let mut edges = Vec::new();
        let mut cur = src as usize;
        for dim in 0..self.cube.n {
            let want = addr.digit(dst as usize, dim) as i64;
            loop {
                let have = addr.digit(cur, dim) as i64;
                if have == want {
                    break;
                }
                let fwd = (want - have).rem_euclid(k);
                let bwd = (have - want).rem_euclid(k);
                let step = if self.cube.wraparound {
                    if fwd <= bwd {
                        1
                    } else {
                        -1
                    }
                } else if want > have {
                    1
                } else {
                    -1
                };
                let next_digit = (have + step).rem_euclid(k) as usize;
                let next = addr.with_digit(cur, dim, next_digit);
                let e = *self
                    .edge_of
                    .get(&(cur as NodeId, next as NodeId))
                    .expect("dimension-order step is not an edge");
                edges.push(e);
                nodes.push(next as NodeId);
                cur = next;
            }
        }
        RoutePath { nodes, edges }
    }

    /// Maximum total `cost(edge)` over all ordered pairs routed
    /// dimension-order — the deterministic-router counterpart of
    /// `routing::max_route_cost`.
    pub fn max_route_cost(&self, cost: impl Fn(EdgeId) -> u64) -> Option<u64> {
        let n = self.cube.node_count();
        if n < 2 {
            return None;
        }
        let mut best = 0u64;
        for s in 0..n as NodeId {
            for d in 0..n as NodeId {
                if s == d {
                    continue;
                }
                let p = self.route(s, d);
                let total: u64 = p.edges.iter().map(|&e| cost(e)).sum();
                best = best.max(total);
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::properties::GraphProperties;
    use crate::routing::shortest_path;

    fn check_path_valid(g: &Graph, p: &RoutePath) {
        for i in 0..p.edges.len() {
            let (u, v) = g.endpoints(p.edges[i]);
            let (a, b) = (p.nodes[i], p.nodes[i + 1]);
            assert!((u, v) == (a, b) || (u, v) == (b, a));
        }
    }

    #[test]
    fn routes_are_shortest_on_torus() {
        let cube = KaryNCube::torus(5, 2);
        let router = DimensionOrderRouter::new(&cube);
        for s in 0..25u32 {
            let dist = cube.graph.bfs_distances(s);
            for d in 0..25u32 {
                let p = router.route(s, d);
                check_path_valid(&cube.graph, &p);
                assert_eq!(p.len() as u32, dist[d as usize], "{s}->{d}");
                assert_eq!(*p.nodes.last().unwrap(), d);
            }
        }
    }

    #[test]
    fn routes_are_shortest_on_hypercube_as_2ary() {
        let cube = KaryNCube::torus(2, 5);
        let router = DimensionOrderRouter::new(&cube);
        for s in [0u32, 7, 31] {
            for d in 0..32u32 {
                let p = router.route(s, d);
                assert_eq!(p.len(), (s ^ d).count_ones() as usize);
            }
        }
    }

    #[test]
    fn mesh_routing_never_wraps() {
        let cube = KaryNCube::mesh(4, 2);
        let router = DimensionOrderRouter::new(&cube);
        for s in 0..16u32 {
            for d in 0..16u32 {
                let p = router.route(s, d);
                check_path_valid(&cube.graph, &p);
                let bfs = shortest_path(&cube.graph, s, d).unwrap();
                assert_eq!(p.len(), bfs.len(), "{s}->{d}");
            }
        }
    }

    #[test]
    fn max_route_cost_matches_bfs_bound() {
        // with unit costs dimension-order equals the diameter
        let cube = KaryNCube::torus(4, 2);
        let router = DimensionOrderRouter::new(&cube);
        let m = router.max_route_cost(|_| 1).unwrap();
        assert_eq!(m as usize, cube.graph.diameter().unwrap());
    }

    #[test]
    fn deterministic_tie_break() {
        // k even: opposite node reachable both ways; router must be
        // deterministic (+1 direction on ties)
        let cube = KaryNCube::torus(4, 1);
        let router = DimensionOrderRouter::new(&cube);
        let p1 = router.route(0, 2);
        let p2 = router.route(0, 2);
        assert_eq!(p1, p2);
        assert_eq!(p1.nodes, vec![0, 1, 2]);
    }
}
