//! Incremental construction of [`Graph`]s.

use crate::graph::{Graph, NodeId};

/// Accumulates edges and produces an immutable [`Graph`].
///
/// ```
/// use mlv_topology::GraphBuilder;
/// let mut b = GraphBuilder::new("square", 4);
/// for i in 0..4 { b.add_edge(i, (i + 1) % 4); }
/// let g = b.build();
/// assert_eq!(g.regular_degree(), Some(2));
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    name: String,
    node_count: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Start a graph with `node_count` nodes and no edges.
    pub fn new(name: impl Into<String>, node_count: usize) -> Self {
        assert!(
            node_count <= u32::MAX as usize,
            "node count exceeds u32 id space"
        );
        GraphBuilder {
            name: name.into(),
            node_count,
            edges: Vec::new(),
        }
    }

    /// Add an undirected edge. Parallel edges are allowed; self-loops are
    /// not (no network in the paper has them).
    ///
    /// # Panics
    /// If either endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.node_count && (v as usize) < self.node_count,
            "edge ({u},{v}) out of range for {} nodes",
            self.node_count
        );
        assert_ne!(u, v, "self-loop ({u},{u}) rejected");
        self.edges.push((u, v));
    }

    /// Add an edge only if no parallel copy exists yet. Returns `true` if
    /// the edge was inserted. Useful for families defined by symmetric
    /// neighbour rules where each edge would otherwise be generated twice.
    pub fn add_edge_dedup(&mut self, u: NodeId, v: NodeId) -> bool {
        let key = if u <= v { (u, v) } else { (v, u) };
        if self
            .edges
            .iter()
            .any(|&(a, b)| (if a <= b { (a, b) } else { (b, a) }) == key)
        {
            return false;
        }
        self.add_edge(u, v);
        true
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finish construction.
    pub fn build(self) -> Graph {
        Graph::from_parts(self.name, self.node_count, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_add() {
        let mut b = GraphBuilder::new("t", 3);
        assert!(b.add_edge_dedup(0, 1));
        assert!(!b.add_edge_dedup(1, 0));
        assert!(b.add_edge_dedup(1, 2));
        assert_eq!(b.edge_count(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_rejected() {
        let mut b = GraphBuilder::new("t", 2);
        b.add_edge(0, 2);
    }
}
