//! Routing: shortest paths in the network graph.
//!
//! The paper's fourth figure of merit is "the maximum total length of
//! wires along the routing path between any source–destination pair"
//! (§1, claim 4). Evaluating it needs *graph* routing paths (sequences of
//! edges) whose per-hop wire lengths are then summed in the layout. We
//! provide BFS shortest-path extraction and an all-pairs max/total
//! aggregator that works edge-by-edge so the layout crate can plug in the
//! realized wire lengths.

use crate::graph::{EdgeId, Graph, NodeId};
use std::collections::VecDeque;

/// A routing path: the node sequence and the edges hopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutePath {
    /// Visited nodes, `nodes[0] = src`, `nodes.last() = dst`.
    pub nodes: Vec<NodeId>,
    /// Edges used, `edges[i]` joins `nodes[i]` and `nodes[i+1]`.
    pub edges: Vec<EdgeId>,
}

impl RoutePath {
    /// Number of hops.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` for the trivial src == dst path.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// BFS shortest path from `src` to `dst`; `None` if unreachable.
/// Ties are broken toward smaller node ids (deterministic).
pub fn shortest_path(g: &Graph, src: NodeId, dst: NodeId) -> Option<RoutePath> {
    let n = g.node_count();
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut q = VecDeque::new();
    seen[src as usize] = true;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        if u == dst {
            break;
        }
        for &(v, e) in g.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                prev[v as usize] = Some((u, e));
                q.push_back(v);
            }
        }
    }
    if !seen[dst as usize] {
        return None;
    }
    let mut nodes = vec![dst];
    let mut edges = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (p, e) = prev[cur as usize].expect("path chain broken");
        edges.push(e);
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    edges.reverse();
    Some(RoutePath { nodes, edges })
}

/// Shortest-path trees from `src`: for every reachable node, the edge on
/// which BFS first discovered it. Used for all-pairs aggregation without
/// re-running per-destination searches.
pub fn bfs_tree(g: &Graph, src: NodeId) -> Vec<Option<(NodeId, EdgeId)>> {
    let n = g.node_count();
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut q = VecDeque::new();
    seen[src as usize] = true;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        for &(v, e) in g.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                prev[v as usize] = Some((u, e));
                q.push_back(v);
            }
        }
    }
    prev
}

/// For every ordered pair `(src, dst)` with a shortest path, compute
/// `Σ cost(edge)` along one BFS shortest path and return the maximum.
///
/// `cost(e)` is supplied by the caller — the layout crate passes realized
/// wire lengths, reproducing the paper's "maximum total length of wires
/// along the routing path" metric. Returns `None` for graphs with < 2
/// nodes or disconnected graphs.
pub fn max_route_cost(g: &Graph, cost: impl Fn(EdgeId) -> u64) -> Option<u64> {
    let n = g.node_count();
    if n < 2 {
        return None;
    }
    let mut best: Option<u64> = None;
    for src in 0..n {
        let prev = bfs_tree(g, src as NodeId);
        // accumulate cost-to-src along the tree with memoization
        let mut acc: Vec<Option<u64>> = vec![None; n];
        acc[src] = Some(0);
        for dst in 0..n {
            let mut chain = Vec::new();
            let mut cur = dst;
            while acc[cur].is_none() {
                match prev[cur] {
                    Some((p, e)) => {
                        chain.push((cur, e));
                        cur = p as usize;
                    }
                    None => return None, // disconnected
                }
            }
            let mut c = acc[cur].unwrap();
            for &(node, e) in chain.iter().rev() {
                c += cost(e);
                acc[node] = Some(c);
            }
            let total = acc[dst].unwrap();
            best = Some(best.map_or(total, |b| b.max(total)));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::hypercube;
    use crate::ring::ring;

    #[test]
    fn shortest_path_on_ring() {
        let g = ring(8);
        let p = shortest_path(&g, 0, 3).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.nodes.first(), Some(&0));
        assert_eq!(p.nodes.last(), Some(&3));
        // wraparound is shorter for 0 -> 6
        let p = shortest_path(&g, 0, 6).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn path_edges_join_consecutive_nodes() {
        let g = hypercube(4);
        let p = shortest_path(&g, 0b0000, 0b1111).unwrap();
        assert_eq!(p.len(), 4);
        for i in 0..p.edges.len() {
            let (u, v) = g.endpoints(p.edges[i]);
            let (a, b) = (p.nodes[i], p.nodes[i + 1]);
            assert!((u, v) == (a, b) || (u, v) == (b, a));
        }
    }

    #[test]
    fn trivial_path() {
        let g = ring(5);
        let p = shortest_path(&g, 2, 2).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.nodes, vec![2]);
    }

    #[test]
    fn unreachable_is_none() {
        use crate::builder::GraphBuilder;
        let g = {
            let mut b = GraphBuilder::new("islands", 3);
            b.add_edge(0, 1);
            b.build()
        };
        assert!(shortest_path(&g, 0, 2).is_none());
    }

    #[test]
    fn max_route_cost_unit_costs_is_diameter() {
        use crate::properties::GraphProperties;
        let g = hypercube(4);
        let m = max_route_cost(&g, |_| 1).unwrap();
        assert_eq!(m as usize, g.diameter().unwrap());
    }

    #[test]
    fn max_route_cost_weighted() {
        // path 0-1-2 with edge costs 10 and 1 -> max route cost 11
        use crate::ring::path;
        let g = path(3);
        let m = max_route_cost(&g, |e| if e == 0 { 10 } else { 1 }).unwrap();
        assert_eq!(m, 11);
    }

    #[test]
    fn max_route_cost_disconnected_is_none() {
        use crate::builder::GraphBuilder;
        let mut b = GraphBuilder::new("islands", 4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        assert_eq!(max_route_cost(&b.build(), |_| 1), None);
    }
}
