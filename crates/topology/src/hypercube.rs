//! Binary hypercubes.
//!
//! The n-dimensional hypercube has `N = 2ⁿ` nodes labelled by n-bit
//! strings, with a link between every pair of labels at Hamming distance
//! one. It is the Cartesian product of a `⌈n/2⌉`-cube and a `⌊n/2⌋`-cube,
//! which is exactly how the paper lays it out (§5.1) with the
//! `⌊2N/3⌋`-track collinear layout as the row/column connector.

use crate::builder::GraphBuilder;
use crate::graph::Graph;

/// Build the `n`-dimensional hypercube (`2ⁿ` nodes, `n·2ⁿ⁻¹` links).
///
/// ```
/// let g = mlv_topology::hypercube::hypercube(4);
/// assert_eq!(g.node_count(), 16);
/// assert_eq!(g.regular_degree(), Some(4));
/// assert!(g.has_edge(0b0000, 0b0100));
/// ```
pub fn hypercube(n: usize) -> Graph {
    assert!(n < 31, "hypercube dimension too large for u32 node ids");
    let nn = 1usize << n;
    let mut b = GraphBuilder::new(format!("{n}-cube"), nn);
    for i in 0..nn {
        for j in 0..n {
            let v = i ^ (1 << j);
            if v > i {
                b.add_edge(i as u32, v as u32);
            }
        }
    }
    b.build()
}

/// The dimension (bit index) in which two adjacent hypercube labels
/// differ. Panics if the labels are not at Hamming distance 1.
pub fn cube_edge_dimension(u: u32, v: u32) -> usize {
    let x = u ^ v;
    assert!(x != 0 && x & (x - 1) == 0, "not a hypercube edge");
    x.trailing_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::GraphProperties;

    #[test]
    fn sizes() {
        for n in 0..8 {
            let g = hypercube(n);
            assert_eq!(g.node_count(), 1 << n);
            assert_eq!(g.edge_count(), n << n >> 1);
        }
    }

    #[test]
    fn regular_connected_diameter() {
        let g = hypercube(5);
        assert_eq!(g.regular_degree(), Some(5));
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(5));
    }

    #[test]
    fn adjacency_is_hamming_one() {
        let g = hypercube(4);
        for e in g.edge_ids() {
            let (u, v) = g.endpoints(e);
            assert_eq!((u ^ v).count_ones(), 1);
        }
    }

    #[test]
    fn edge_dimension() {
        assert_eq!(cube_edge_dimension(0b0110, 0b0111), 0);
        assert_eq!(cube_edge_dimension(0b0110, 0b1110), 3);
    }

    #[test]
    #[should_panic]
    fn edge_dimension_rejects_non_edges() {
        cube_edge_dimension(0b00, 0b11);
    }

    #[test]
    fn zero_cube() {
        let g = hypercube(0);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}
