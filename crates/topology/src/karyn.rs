//! k-ary n-cubes (tori) and k-ary n-meshes.
//!
//! The paper's running example (§3.1): node `(i_{n−1}, …, i_0)` with each
//! digit in `0..k`; dimension-`j` links join nodes whose digit `j` differs
//! by ±1 (mod k for the torus). For `k == 2` the "+1" and "−1" neighbours
//! coincide, so each dimension contributes a single link per node pair
//! (the 2-ary n-cube *is* the hypercube).

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::labels::MixedRadix;

/// A k-ary n-cube together with its addressing, retaining the parameters
/// the layout generators need (which digit an edge lives in, etc.).
#[derive(Clone, Debug)]
pub struct KaryNCube {
    /// Radix (nodes per dimension).
    pub k: usize,
    /// Number of dimensions.
    pub n: usize,
    /// Whether wraparound links are present (torus) or not (mesh).
    pub wraparound: bool,
    /// The addressing system (digit 0 least significant).
    pub addr: MixedRadix,
    /// The underlying graph.
    pub graph: Graph,
}

impl KaryNCube {
    /// Build the k-ary n-cube (torus).
    pub fn torus(k: usize, n: usize) -> Self {
        Self::build(k, n, true)
    }

    /// Build the k-ary n-mesh (no wraparound links).
    pub fn mesh(k: usize, n: usize) -> Self {
        Self::build(k, n, false)
    }

    fn build(k: usize, n: usize, wraparound: bool) -> Self {
        assert!(k >= 1, "radix must be positive");
        let addr = MixedRadix::fixed(k, n);
        let nn = addr.cardinality();
        let kind = if wraparound { "cube" } else { "mesh" };
        let mut b = GraphBuilder::new(format!("{k}-ary {n}-{kind}"), nn);
        for i in 0..nn {
            for j in 0..n {
                let d = addr.digit(i, j);
                // Generate each link once, from its lower-digit endpoint.
                if d + 1 < k {
                    b.add_edge(i as u32, addr.with_digit(i, j, d + 1) as u32);
                }
                if wraparound && d == k - 1 && k >= 3 {
                    // wrap link (k-1) -> 0
                    b.add_edge(i as u32, addr.with_digit(i, j, 0) as u32);
                }
            }
        }
        KaryNCube {
            k,
            n,
            wraparound,
            addr,
            graph: b.build(),
        }
    }

    /// Number of nodes, `kⁿ`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The dimension (digit index) in which the endpoints of an edge
    /// differ. Panics if the nodes are not adjacent along exactly one
    /// dimension.
    pub fn edge_dimension(&self, u: u32, v: u32) -> usize {
        let du = self.addr.digits_of(u as usize);
        let dv = self.addr.digits_of(v as usize);
        let mut dims = (0..self.n).filter(|&j| du[j] != dv[j]);
        let j = dims.next().expect("endpoints identical");
        assert!(dims.next().is_none(), "endpoints differ in >1 dimension");
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::hypercube;
    use crate::properties::GraphProperties;

    #[test]
    fn torus_edge_count() {
        // k >= 3: n*k^n links.
        let t = KaryNCube::torus(3, 2);
        assert_eq!(t.node_count(), 9);
        assert_eq!(t.graph.edge_count(), 2 * 9);
        let t = KaryNCube::torus(4, 3);
        assert_eq!(t.graph.edge_count(), 3 * 64);
    }

    #[test]
    fn binary_torus_is_hypercube() {
        let t = KaryNCube::torus(2, 4);
        let h = hypercube(4);
        assert_eq!(t.graph.edge_multiset(), h.edge_multiset());
    }

    #[test]
    fn mesh_edge_count() {
        let m = KaryNCube::mesh(4, 2);
        // per dimension: (k-1)*k^(n-1) links
        assert_eq!(m.graph.edge_count(), 2 * 3 * 4);
    }

    #[test]
    fn torus_regular() {
        let t = KaryNCube::torus(5, 2);
        assert_eq!(t.graph.regular_degree(), Some(4));
        assert!(t.graph.is_connected());
    }

    #[test]
    fn torus_diameter() {
        let t = KaryNCube::torus(4, 2);
        assert_eq!(t.graph.diameter(), Some(4)); // n * floor(k/2)
        let m = KaryNCube::mesh(4, 2);
        assert_eq!(m.graph.diameter(), Some(6)); // n * (k-1)
    }

    #[test]
    fn edge_dimension_classification() {
        let t = KaryNCube::torus(3, 3);
        for e in t.graph.edge_ids() {
            let (u, v) = t.graph.endpoints(e);
            let j = t.edge_dimension(u, v);
            assert!(j < 3);
            let du = t.addr.digit(u as usize, j) as i64;
            let dv = t.addr.digit(v as usize, j) as i64;
            let diff = (du - dv).rem_euclid(3);
            assert!(diff == 1 || diff == 2);
        }
    }

    #[test]
    fn degenerate_radix_one() {
        let t = KaryNCube::torus(1, 3);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.graph.edge_count(), 0);
    }
}
