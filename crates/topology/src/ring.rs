//! Rings (k-node cycles, i.e. k-ary 1-cubes).
//!
//! The ring is the base case of the paper's collinear layout recursion
//! (§3.1): k nodes along a row, adjacent links in the first track, the
//! wraparound link in the second.

use crate::builder::GraphBuilder;
use crate::graph::Graph;

/// Build a `k`-node ring.
///
/// * `k == 1` gives a single node with no edges,
/// * `k == 2` gives a single edge (the "+1" and "−1" neighbours coincide),
/// * `k >= 3` gives a cycle.
pub fn ring(k: usize) -> Graph {
    let mut b = GraphBuilder::new(format!("{k}-ring"), k);
    if k == 2 {
        b.add_edge(0, 1);
    } else if k >= 3 {
        for i in 0..k {
            b.add_edge(i as u32, ((i + 1) % k) as u32);
        }
    }
    b.build()
}

/// Build a `k`-node path (linear array) — the mesh counterpart of the
/// ring, used by mesh variants of k-ary n-cubes.
pub fn path(k: usize) -> Graph {
    let mut b = GraphBuilder::new(format!("{k}-path"), k);
    for i in 1..k {
        b.add_edge((i - 1) as u32, i as u32);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::GraphProperties;

    #[test]
    fn ring_sizes() {
        assert_eq!(ring(1).edge_count(), 0);
        assert_eq!(ring(2).edge_count(), 1);
        assert_eq!(ring(3).edge_count(), 3);
        assert_eq!(ring(8).edge_count(), 8);
    }

    #[test]
    fn ring_regular() {
        for k in 3..10 {
            let g = ring(k);
            assert_eq!(g.regular_degree(), Some(2), "k={k}");
            assert!(g.is_connected());
        }
    }

    #[test]
    fn ring_diameter() {
        assert_eq!(ring(8).diameter(), Some(4));
        assert_eq!(ring(9).diameter(), Some(4));
    }

    #[test]
    fn path_properties() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.diameter(), Some(4));
        assert_eq!(g.regular_degree(), None);
    }

    #[test]
    fn path_of_one_and_two() {
        assert_eq!(path(1).edge_count(), 0);
        assert_eq!(path(2).edge_count(), 1);
    }
}
