//! Hierarchical swap networks (Yeh & Parhami [33, 34]).
//!
//! An l-level HSN over an r-node *nucleus* graph has node labels
//! `(c_{l−1}, …, c_1 | p)` with all digits in `0..r`: the `c` digits name
//! the cluster, `p` the position inside its nucleus. Links:
//!
//! * **nucleus links**: the nucleus graph's edges on `p` inside every
//!   cluster;
//! * **level-i swap links** (`1 ≤ i ≤ l−1`): `(c | p)` is joined to the
//!   label obtained by *swapping* `p` and `c_i` — present only when
//!   `p ≠ c_i` (otherwise the swap is the identity).
//!
//! Shrinking every cluster to a supernode yields an (l−1)-dimensional
//! radix-r generalized hypercube with **exactly one link between each
//! pair of adjacent clusters** — the property §4.3's layout exploits.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use crate::labels::MixedRadix;

/// A hierarchical swap network.
#[derive(Clone, Debug)]
pub struct Hsn {
    /// Number of levels `l` (≥ 1). Level 1 is the nucleus itself.
    pub levels: usize,
    /// Nucleus size `r`.
    pub r: usize,
    /// Addressing: digit 0 is the nucleus position `p`, digits `1..l`
    /// are `c_1 … c_{l−1}`.
    pub addr: MixedRadix,
    /// The underlying graph (`r^l` nodes).
    pub graph: Graph,
}

impl Hsn {
    /// Build an l-level HSN whose nucleus is the given r-node graph.
    pub fn new(levels: usize, nucleus: &Graph) -> Self {
        assert!(levels >= 1, "need at least one level");
        let r = nucleus.node_count();
        assert!(r >= 2, "nucleus must have at least 2 nodes");
        let addr = MixedRadix::fixed(r, levels);
        let nn = addr.cardinality();
        let mut b = GraphBuilder::new(format!("HSN({levels},{})", nucleus.name()), nn);
        for i in 0..nn {
            let digits = addr.digits_of(i);
            let p = digits[0];
            // nucleus links (generate once from the smaller endpoint)
            for &(q, _) in nucleus.neighbors(p as NodeId) {
                if (q as usize) > p {
                    b.add_edge(i as u32, addr.with_digit(i, 0, q as usize) as u32);
                }
            }
            // swap links, generated once from the side with p < c_i
            for lvl in 1..levels {
                let ci = digits[lvl];
                if p < ci {
                    let mut d2 = digits.clone();
                    d2[0] = ci;
                    d2[lvl] = p;
                    b.add_edge(i as u32, addr.index_of(&d2) as u32);
                }
            }
        }
        Hsn {
            levels,
            r,
            addr,
            graph: b.build(),
        }
    }

    /// Number of nodes `N = r^l`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Cluster index (the `c` digits as a radix-r number) of a node.
    pub fn cluster_of(&self, id: NodeId) -> usize {
        (id as usize) / self.r
    }

    /// Nucleus position `p` of a node.
    pub fn position_of(&self, id: NodeId) -> usize {
        (id as usize) % self.r
    }

    /// The quotient graph over clusters: an (l−1)-dimensional radix-r
    /// generalized hypercube (each adjacent pair joined once).
    pub fn quotient(&self) -> Graph {
        crate::genhyper::GeneralizedHypercube::fixed(self.r, self.levels - 1).graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::complete;
    use crate::properties::GraphProperties;
    use crate::ring::ring;
    use std::collections::BTreeMap;

    #[test]
    fn level_one_is_nucleus() {
        let nucleus = ring(5);
        let h = Hsn::new(1, &nucleus);
        assert_eq!(h.graph.edge_multiset(), nucleus.edge_multiset());
    }

    #[test]
    fn node_and_swap_link_counts() {
        let nucleus = complete(4);
        let h = Hsn::new(3, &nucleus);
        assert_eq!(h.node_count(), 64);
        // nucleus edges: 6 per cluster * 16 clusters = 96
        // swap links per level: for each cluster pair differing in that
        // digit exactly 1 link; per level: C(r,2)*r^(l-2) pairs = 6*4 = 24;
        // 2 levels -> 48
        assert_eq!(h.graph.edge_count(), 96 + 48);
        assert!(h.graph.is_connected());
    }

    #[test]
    fn quotient_has_one_link_per_adjacent_pair() {
        let nucleus = ring(3);
        let h = Hsn::new(3, &nucleus);
        // count inter-cluster links per cluster pair
        let mut count: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for e in h.graph.edge_ids() {
            let (u, v) = h.graph.endpoints(e);
            let (cu, cv) = (h.cluster_of(u), h.cluster_of(v));
            if cu != cv {
                let key = if cu < cv { (cu, cv) } else { (cv, cu) };
                *count.entry(key).or_insert(0) += 1;
            }
        }
        let q = h.quotient();
        assert_eq!(count.len(), q.edge_count());
        for (&(a, b), &m) in &count {
            assert_eq!(m, 1, "cluster pair ({a},{b}) has {m} links");
            assert!(q.has_edge(a as u32, b as u32));
        }
    }

    #[test]
    fn swap_links_swap_digits() {
        let nucleus = ring(4);
        let h = Hsn::new(2, &nucleus);
        for e in h.graph.edge_ids() {
            let (u, v) = h.graph.endpoints(e);
            if h.cluster_of(u) != h.cluster_of(v) {
                let du = h.addr.digits_of(u as usize);
                let dv = h.addr.digits_of(v as usize);
                assert_eq!(du[0], dv[1]);
                assert_eq!(du[1], dv[0]);
            }
        }
    }

    #[test]
    fn degree_bound() {
        // degree = nucleus degree + (l-1) swap links at most
        let nucleus = complete(3);
        let h = Hsn::new(4, &nucleus);
        assert!(h.graph.max_degree() <= 2 + 3);
        assert!(h.graph.is_connected());
    }
}
