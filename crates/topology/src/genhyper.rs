//! Generalized hypercubes (Bhuyan & Agrawal 1984).
//!
//! An n-dimensional radix-`(r_{n−1}, …, r_0)` generalized hypercube has
//! node labels that are mixed-radix digit vectors; two nodes are adjacent
//! iff their labels differ in **exactly one digit** (by any amount), i.e.
//! each dimension connects the `r_j` nodes of a digit-line as a complete
//! graph. It is the Cartesian product of complete graphs
//! `K_{r_{n−1}} × ⋯ × K_{r_0}` (paper §4.1).

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::labels::MixedRadix;

/// A generalized hypercube with its mixed-radix addressing.
#[derive(Clone, Debug)]
pub struct GeneralizedHypercube {
    /// Addressing system; digit 0 least significant, radix of digit j is
    /// `r_j`.
    pub addr: MixedRadix,
    /// The underlying graph.
    pub graph: Graph,
}

impl GeneralizedHypercube {
    /// Build the generalized hypercube with the given per-dimension
    /// radices (least significant first). Radix-1 dimensions are legal and
    /// contribute no links.
    pub fn new(radices: Vec<usize>) -> Self {
        let addr = MixedRadix::new(radices.clone());
        let nn = addr.cardinality();
        let mut b = GraphBuilder::new(
            format!(
                "GHC({})",
                radices
                    .iter()
                    .rev()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            nn,
        );
        for i in 0..nn {
            for j in 0..addr.digit_count() {
                let d = addr.digit(i, j);
                // each dimension is a complete graph on the digit line;
                // generate each edge once from the lower digit value.
                for d2 in (d + 1)..addr.radix(j) {
                    b.add_edge(i as u32, addr.with_digit(i, j, d2) as u32);
                }
            }
        }
        GeneralizedHypercube {
            addr,
            graph: b.build(),
        }
    }

    /// Fixed-radix convenience constructor: n dimensions of radix r.
    pub fn fixed(r: usize, n: usize) -> Self {
        Self::new(vec![r; n])
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Node degree: `Σ (r_j − 1)`.
    pub fn expected_degree(&self) -> usize {
        self.addr.radices().iter().map(|&r| r - 1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::complete;
    use crate::hypercube::hypercube;
    use crate::properties::GraphProperties;

    #[test]
    fn radix2_is_hypercube() {
        let g = GeneralizedHypercube::fixed(2, 4);
        assert_eq!(g.graph.edge_multiset(), hypercube(4).edge_multiset());
    }

    #[test]
    fn one_dimension_is_complete() {
        let g = GeneralizedHypercube::new(vec![7]);
        assert_eq!(g.graph.edge_multiset(), complete(7).edge_multiset());
    }

    #[test]
    fn degree_and_counts() {
        let g = GeneralizedHypercube::fixed(4, 3);
        assert_eq!(g.node_count(), 64);
        assert_eq!(g.graph.regular_degree(), Some(9));
        assert_eq!(g.expected_degree(), 9);
        // edges = N * degree / 2
        assert_eq!(g.graph.edge_count(), 64 * 9 / 2);
    }

    #[test]
    fn mixed_radix_counts() {
        let g = GeneralizedHypercube::new(vec![2, 3, 4]);
        assert_eq!(g.node_count(), 24);
        assert_eq!(g.graph.regular_degree(), Some(1 + 2 + 3));
        assert!(g.graph.is_connected());
    }

    #[test]
    fn diameter_is_dimension_count() {
        // one hop fixes one digit
        let g = GeneralizedHypercube::fixed(3, 3);
        assert_eq!(g.graph.diameter(), Some(3));
    }

    #[test]
    fn radix_one_dimensions_are_inert() {
        let g = GeneralizedHypercube::new(vec![3, 1, 3]);
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.graph.regular_degree(), Some(4));
    }
}
