//! Property-based tests (proptest) for the topology substrate.

use mlv_core::prop;
use mlv_core::{mlv_proptest, prop_assert, prop_assert_eq, prop_assume};
use mlv_topology::cayley::{perm_rank, perm_unrank};
use mlv_topology::genhyper::GeneralizedHypercube;
use mlv_topology::karyn::KaryNCube;
use mlv_topology::labels::MixedRadix;
use mlv_topology::product::cartesian_product;
use mlv_topology::properties::GraphProperties;
use mlv_topology::ring::ring;
use mlv_topology::GraphBuilder;

mlv_proptest! {
    /// Mixed-radix digit/index conversion round-trips for arbitrary
    /// radix vectors.
    #[test]
    fn mixed_radix_roundtrip(radices in prop::vec(1usize..6, 1..6)) {
        let mr = MixedRadix::new(radices);
        let card = mr.cardinality();
        prop_assume!(card <= 4096);
        for i in 0..card {
            let d = mr.digits_of(i);
            prop_assert_eq!(mr.index_of(&d), i);
            for (j, &dj) in d.iter().enumerate() {
                prop_assert_eq!(mr.digit(i, j), dj);
            }
        }
    }

    /// split_index is consistent with split cardinalities for every
    /// split point.
    #[test]
    fn mixed_radix_split(radices in prop::vec(1usize..5, 1..5)) {
        let mr = MixedRadix::new(radices.clone());
        prop_assume!(mr.cardinality() <= 2048);
        for at in 0..=radices.len() {
            let (lo, hi) = mr.split(at);
            prop_assert_eq!(lo.cardinality() * hi.cardinality(), mr.cardinality());
            for i in 0..mr.cardinality() {
                let (l, h) = mr.split_index(i, at);
                prop_assert!(l < lo.cardinality());
                prop_assert!(h < hi.cardinality());
                prop_assert_eq!(h * lo.cardinality() + l, i);
            }
        }
    }

    /// Permutation ranking round-trips.
    #[test]
    fn perm_rank_roundtrip(n in 1usize..7, seed in 0usize..5040) {
        let nf: usize = (1..=n).product();
        let r = seed % nf;
        prop_assert_eq!(perm_rank(&perm_unrank(r, n)), r);
    }

    /// Cartesian product edge count: |E| = |E_A|·|B| + |E_B|·|A|, and
    /// regular factors give a regular product.
    #[test]
    fn product_edge_count(a in 2usize..8, b in 2usize..8) {
        let ga = ring(a);
        let gb = ring(b);
        let p = cartesian_product(&ga, &gb);
        prop_assert_eq!(
            p.edge_count(),
            ga.edge_count() * b + gb.edge_count() * a
        );
        let da = ga.regular_degree().unwrap();
        let db = gb.regular_degree().unwrap();
        prop_assert_eq!(p.regular_degree(), Some(da + db));
        prop_assert!(p.is_connected());
    }

    /// k-ary n-cubes are vertex-regular, connected, with n·kⁿ links for
    /// k ≥ 3.
    #[test]
    fn karyn_invariants(k in 3usize..6, n in 1usize..4) {
        let t = KaryNCube::torus(k, n);
        prop_assert_eq!(t.graph.node_count(), k.pow(n as u32));
        prop_assert_eq!(t.graph.edge_count(), n * k.pow(n as u32));
        prop_assert_eq!(t.graph.regular_degree(), Some(2 * n));
        prop_assert!(t.graph.is_connected());
    }

    /// Generalized hypercube degree: Σ(r_j − 1); diameter = number of
    /// non-trivial dimensions.
    #[test]
    fn ghc_invariants(radices in prop::vec(2usize..5, 1..4)) {
        let g = GeneralizedHypercube::new(radices.clone());
        prop_assume!(g.node_count() <= 512);
        let deg: usize = radices.iter().map(|&r| r - 1).sum();
        prop_assert_eq!(g.graph.regular_degree(), Some(deg));
        prop_assert_eq!(g.graph.diameter(), Some(radices.len()));
    }

    /// BFS distance is symmetric on arbitrary graphs.
    #[test]
    fn bfs_symmetry(edges in prop::vec((0u32..12, 0u32..12), 0..30)) {
        let mut b = GraphBuilder::new("random", 12);
        for (u, v) in edges {
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        for u in 0..12u32 {
            let du = g.bfs_distances(u);
            for v in 0..12u32 {
                let dv = g.bfs_distances(v);
                prop_assert_eq!(du[v as usize], dv[u as usize]);
            }
        }
    }

    /// The numbering cut upper-bounds the exact bisection on small
    /// random graphs.
    #[test]
    fn numbering_cut_bounds_bisection(
        edges in prop::vec((0u32..10, 0u32..10), 1..25)
    ) {
        let mut b = GraphBuilder::new("random", 10);
        for (u, v) in edges {
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        if let Some(exact) = g.exact_bisection(12) {
            prop_assert!(exact <= g.numbering_cut_width());
        }
    }

    /// Edge multisets are stable under re-insertion order of the same
    /// edge set.
    #[test]
    fn edge_multiset_order_invariant(
        mut edges in prop::vec((0u32..8, 0u32..8), 1..20)
    ) {
        edges.retain(|(u, v)| u != v);
        let mut b1 = GraphBuilder::new("a", 8);
        for &(u, v) in &edges {
            b1.add_edge(u, v);
        }
        edges.reverse();
        let mut b2 = GraphBuilder::new("b", 8);
        for &(u, v) in &edges {
            b2.add_edge(v, u);
        }
        prop_assert_eq!(b1.build().edge_multiset(), b2.build().edge_multiset());
    }
}
