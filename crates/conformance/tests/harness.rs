//! End-to-end conformance harness tests: the full seeded lattice is
//! clean, every `CheckError` kind is exercised by injection, and the
//! report is deterministic per seed and per thread count.

use mlv_conformance::{cases, inject, run, Config};
use mlv_core::exec;
use mlv_core::rng::Rng;
use mlv_grid::checker::{self, CheckError};
use mlv_layout::families;
use std::collections::BTreeSet;

fn json_lines(config: &Config) -> Vec<String> {
    run(config).results.iter().map(|r| r.json_line()).collect()
}

#[test]
fn full_lattice_is_clean_and_covers_every_kind() {
    let config = Config::default();
    let report = run(&config);
    assert_eq!(report.results.len(), cases::family_names().len());
    for r in &report.results {
        assert_eq!(r.cases, config.cases_per_family, "{}", r.family);
        assert!(r.injections > 0, "{}: no injection applied", r.family);
        assert!(
            r.passed(),
            "{} violations:\n{}",
            r.family,
            r.violations.join("\n")
        );
    }
    assert!(
        report.uncovered_kinds().is_empty(),
        "CheckError kinds never triggered by injection: {:?}",
        report.uncovered_kinds()
    );
    assert!(report.passed(true));
}

#[test]
fn report_is_deterministic_per_seed() {
    let config = Config {
        seed: 0xC0FFEE,
        cases_per_family: 4,
        families: vec!["hypercube".into(), "ccc".into(), "clusterc".into()],
        inject: true,
        pdk_axis: false,
    };
    assert_eq!(json_lines(&config), json_lines(&config));

    let mut other = config.clone();
    other.seed = 0xC0FFEE + 1;
    assert_ne!(
        json_lines(&config),
        json_lines(&other),
        "seed change must reach the lattice"
    );
}

#[test]
fn report_is_identical_across_thread_counts() {
    let config = Config {
        seed: 7,
        cases_per_family: 3,
        families: vec!["hypercube".into(), "genhyper".into(), "star".into()],
        inject: true,
        pdk_axis: false,
    };
    let sequential = exec::with_thread_count(1, || json_lines(&config));
    let parallel = exec::with_thread_count(8, || json_lines(&config));
    assert_eq!(sequential, parallel);
}

/// The technology axis: a full strategy cycle with `pdk_axis` on runs
/// the PDK oracle clean on every case and exercises the direction and
/// pitch error kinds that are unreachable without a stack.
#[test]
fn pdk_axis_lattice_is_clean_and_covers_pdk_kinds() {
    let config = Config {
        seed: 0xD1E,
        cases_per_family: inject::Strategy::ALL_WITH_PDK.len(),
        families: vec!["hypercube".into(), "mesh".into()],
        inject: true,
        pdk_axis: true,
    };
    let report = run(&config);
    for r in &report.results {
        assert!(
            r.passed(),
            "{} violations:\n{}",
            r.family,
            r.violations.join("\n")
        );
    }
    for kind in CheckError::PDK_KINDS {
        assert!(
            report.results.iter().any(|r| r.kinds.contains(kind)),
            "PDK axis never triggered {kind}"
        );
    }
    assert!(report.uncovered_kinds().is_empty());
    // the axis is observable in the report object, and deterministic
    let replay = run(&config);
    assert_eq!(
        report
            .results
            .iter()
            .map(|r| r.json_line())
            .collect::<Vec<_>>(),
        replay
            .results
            .iter()
            .map(|r| r.json_line())
            .collect::<Vec<_>>()
    );
}

/// Satellite guarantee: every [`CheckError`] variant — including the
/// PDK-only direction/pitch kinds — is triggered by at least one
/// injection strategy on a real layout, and no injection survives the
/// checker. Fails naming the uncovered variants.
#[test]
fn every_check_error_kind_triggered_by_injection() {
    let fam = families::hypercube(4);
    let base = fam.realize(4);
    checker::assert_legal(&base, Some(&fam.graph));
    let hv6 = mlv_grid::pdk::Pdk::hv6();
    let hv6_base = mlv_layout::realize_fresh(
        &fam.spec,
        &mlv_layout::RealizeOptions::with_pdk(4, hv6.clone()),
    );
    assert!(checker::check_with_pdk(&hv6_base, Some(&fam.graph), &hv6).is_legal());

    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    let mut survived: Vec<String> = Vec::new();
    for (i, &strategy) in inject::Strategy::ALL_WITH_PDK.iter().enumerate() {
        let mut rng = Rng::seed_from_u64(i as u64);
        let mut mutated = if strategy.needs_pdk() {
            hv6_base.clone()
        } else {
            base.clone()
        };
        let done = inject::inject_with_pdk(&mut mutated, strategy, &mut rng, Some(&hv6))
            .unwrap_or_else(|| panic!("{} not applicable to hypercube(4)", strategy.name()));
        let report = if strategy.needs_pdk() {
            checker::check_with_pdk(&mutated, Some(&fam.graph), &hv6)
        } else {
            checker::check(&mutated, Some(&fam.graph))
        };
        let kinds: BTreeSet<&'static str> = report.errors.iter().map(|e| e.kind()).collect();
        if !kinds.contains(strategy.expected_kind()) {
            survived.push(format!(
                "{} ({}): expected {}, saw {kinds:?}",
                strategy.name(),
                done.detail,
                strategy.expected_kind()
            ));
        }
        seen.extend(kinds);
    }
    assert!(
        survived.is_empty(),
        "surviving injections:\n{}",
        survived.join("\n")
    );

    let uncovered: Vec<&str> = CheckError::KINDS
        .iter()
        .copied()
        .filter(|k| !seen.contains(k))
        .collect();
    assert!(
        uncovered.is_empty(),
        "CheckError variants not covered by any injection: {uncovered:?}"
    );
}

/// The lattice reaches every advertised family and an unknown family
/// name is rejected loudly.
#[test]
fn family_vocabulary() {
    let mut rng = Rng::seed_from_u64(3);
    for name in cases::family_names() {
        let case = cases::build_case(name, &mut rng);
        assert!(case.layers >= 2, "{}", case.label);
        assert!(case.family.graph.node_count() > 0, "{}", case.label);
    }
    let bad = std::panic::catch_unwind(move || {
        let mut rng = Rng::seed_from_u64(0);
        cases::build_case("no-such-family", &mut rng)
    });
    assert!(bad.is_err());
}
