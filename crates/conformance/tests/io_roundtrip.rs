//! Layout serialization coverage over real family layouts: byte-exact
//! round-trips, and malformed inputs that must fail with parse errors —
//! never panics.

use mlv_grid::checker;
use mlv_grid::io::{read_layout, write_layout};
use mlv_layout::families::{self, Family};

fn family_pool() -> Vec<Family> {
    vec![
        families::hypercube(4),
        families::karyn_cube(3, 2, false),
        families::ccc(3),
        families::genhyper(&[3, 3]),
    ]
}

#[test]
fn round_trip_is_byte_identical_for_families() {
    for fam in family_pool() {
        for layers in [2usize, 4] {
            let layout = fam.realize(layers);
            let text = write_layout(&layout);
            let back = read_layout(&text)
                .unwrap_or_else(|e| panic!("{}: reload failed: {e}", layout.name));
            // the reloaded layout is the same object...
            assert_eq!(back.name, layout.name);
            assert_eq!(back.layers, layout.layers);
            assert_eq!(back.nodes.len(), layout.nodes.len());
            assert_eq!(back.wires.len(), layout.wires.len());
            for (a, b) in layout.wires.iter().zip(&back.wires) {
                assert_eq!((a.u, a.v, &a.path), (b.u, b.v, &b.path));
            }
            // ...still legal against the source graph...
            checker::assert_legal(&back, Some(&fam.graph));
            // ...and re-serializes byte-identically (stable format)
            assert_eq!(write_layout(&back), text);
        }
    }
}

#[test]
fn truncated_inputs_error_not_panic() {
    let text = write_layout(&families::hypercube(3).realize(2));
    // every line prefix: parseable or a clean error, never a panic
    let lines: Vec<&str> = text.lines().collect();
    for n in 0..lines.len() {
        let prefix = lines[..n].join("\n");
        let _ = read_layout(&prefix);
    }
    // byte-level truncation can split a record mid-token
    for cut in 0..text.len().min(400) {
        let _ = read_layout(&text[..cut]);
    }
    // a split wire corner is a hard error, not a shorter wire
    if let Some(pos) = text.find("wire") {
        let line_end = text[pos..]
            .find('\n')
            .map(|e| pos + e)
            .unwrap_or(text.len());
        let broken = &text[..line_end - 2];
        assert!(read_layout(broken).is_err() || !broken.contains(','));
    }
}

#[test]
fn corrupted_records_return_errors() {
    let good = write_layout(&families::hypercube(3).realize(2));
    let corrupt = |from: &str, to: &str| -> String { good.replacen(from, to, 1) };

    // each corruption must yield Err with a line number — and no panic
    let cases: Vec<(String, &str)> = vec![
        (corrupt("mlvlayout 1", "mlvlayout 9"), "bad magic"),
        (
            corrupt("layers=", "layers=zero-"),
            "unparseable layer count",
        ),
        (corrupt("layers=2", "layers=0"), "zero layer budget"),
        (corrupt("layer=0", "layer=99"), "node layer out of budget"),
        (corrupt("layer=0", "layer=-3"), "negative node layer"),
        (corrupt("node", "blob"), "unknown record"),
        (corrupt("wire", "wire x"), "non-numeric endpoint"),
    ];
    for (text, what) in cases {
        assert_ne!(text, good, "{what}: corruption did not apply");
        let e = read_layout(&text).unwrap_err();
        assert!(e.line >= 1, "{what}: error missing line number");
    }

    // corrupting a corner token
    if let Some(pos) = good.find(",") {
        let mut text = good.clone();
        text.replace_range(pos..pos + 1, "#");
        assert!(read_layout(&text).is_err());
    }
}

/// Adversarial numeric and name faults: values that previously
/// wrapped silently (negative ids cast through `as u32`, corner
/// layers through `as i32`) or corrupted the round-trip (raw control
/// characters in names) must surface as `ParseError`s with a line
/// number — never a panic, never a wrong layout.
#[test]
fn adversarial_value_faults_are_parse_errors() {
    let good = write_layout(&families::hypercube(3).realize(2));

    // negative node id: -1 used to wrap to 4294967295 via `as u32`
    let negative_id = good.replacen("node 0 ", "node -1 ", 1);
    // negative wire endpoint, same wrap
    let negative_endpoint = good.replacen("wire 0 1 ", "wire 0 -1 ", 1);
    // corner layer beyond i32: used to wrap through `as i32`
    let wrapping_z = good.replacen("0,2,0 ", "0,2,4294967296 ", 1);
    let negative_wrap_z = good.replacen("0,2,0 ", "0,2,-4294967296 ", 1);
    // a raw control character in the name: the old escaper passed it
    // through, so the written text re-parsed as a different layout
    let control_name = good.replacen("layout ", "layout a\nb", 1);
    // malformed \xNN escapes must error, not truncate
    let bad_escape = good.replacen("layout ", "layout a\\xzz", 1);
    let truncated_escape = good.replacen("layout ", "layout a\\x2", 1);

    for (text, what) in [
        (&negative_id, "negative node id"),
        (&negative_endpoint, "negative wire endpoint"),
        (&wrapping_z, "corner layer beyond i32"),
        (&negative_wrap_z, "corner layer below i32"),
        (&control_name, "raw newline in name"),
        (&bad_escape, "bad \\x escape in name"),
        (&truncated_escape, "truncated \\x escape in name"),
    ] {
        assert_ne!(text, &good, "{what}: fault did not apply");
        let e = read_layout(text).unwrap_err();
        assert!(e.line >= 1, "{what}: error missing line number");
    }

    // and the fixed escaper makes hostile names round-trip instead:
    // a name with every previously-corrupting character survives
    let mut layout = families::hypercube(3).realize(2);
    layout.name = "evil\nname\twith \x1b[0m and del\x7f".into();
    let text = write_layout(&layout);
    let back = read_layout(&text).expect("escaped control characters parse");
    assert_eq!(back.name, layout.name);
    assert_eq!(write_layout(&back), text);
}

#[test]
fn empty_and_garbage_inputs() {
    assert!(read_layout("").is_err());
    assert!(read_layout("\n\n").is_err());
    assert!(read_layout("mlvlayout 1").is_err());
    assert!(read_layout("total garbage\nmore garbage").is_err());
    let _ = read_layout("mlvlayout 1\nlayout x layers=3");
}
