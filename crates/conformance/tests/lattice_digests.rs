//! Pinned lattice digests at the default seed.
//!
//! The conformance lattice is the behavioral contract between the
//! family registry, the case drawing procedure, and the RNG: any change
//! to a draw sequence, a parameter pool, or a label format shifts these
//! digests. The fixture pins the digest of every family's default-seed
//! label stream, so refactors of the registry or the realizers can
//! prove the reachable lattice did not move — without running the full
//! oracle suite.
//!
//! If a digest change is *intended* (new pool entry, new label format),
//! regenerate with `mlv conformance --seed 2000 --cases 12` and update
//! the table alongside the reasoning in the commit message.

use mlv_conformance::{cases, family_seed, lattice_digest, DEFAULT_CASES, DEFAULT_SEED};
use mlv_core::rng::Rng;

/// `(family, digest)` pairs as reported by the full harness at the
/// default seed (`target/conf_baseline.jsonl` in the seed revision).
const PINNED: &[(&str, u64)] = &[
    ("hypercube", 0xc6f05b54fa3db9f4),
    ("karyn", 0xd4544e86e911fa6b),
    ("mesh", 0xb5e54c89010bc54a),
    ("genhyper", 0x2c119c9162eb9807),
    ("butterfly", 0x8bdb1a4510dc080a),
    ("ccc", 0xbcd8bcf22c2c9a2a),
    ("folded", 0xf9780d13dcce678c),
    ("enhanced", 0xdc92eb2d404d70ae),
    ("hsn", 0xba1134ce61ac6974),
    ("hhn", 0xef161e92bfb238bc),
    ("isn", 0xa3961b4b95d522c3),
    ("clusterc", 0x669332147bbaaafb),
    ("star", 0x39864efa4ea5cabd),
];

/// Digest of one family's label stream, exactly as `run_family`
/// derives it: one sub-seed per case from the family RNG, one label
/// per sub-seed. Only builds graphs — never realizes layouts — so the
/// whole fixture runs in well under a second.
fn family_digest(name: &str) -> u64 {
    let mut rng = Rng::seed_from_u64(family_seed(DEFAULT_SEED, name));
    let labels: Vec<String> = (0..DEFAULT_CASES)
        .map(|_| rng.next_u64())
        .collect::<Vec<u64>>()
        .into_iter()
        .map(|s| cases::build_case(name, &mut Rng::seed_from_u64(s)).label)
        .collect();
    lattice_digest(labels.iter().map(String::as_str))
}

#[test]
fn pinned_table_covers_exactly_the_lattice_vocabulary() {
    let pinned: Vec<&str> = PINNED.iter().map(|&(n, _)| n).collect();
    assert_eq!(
        pinned,
        cases::family_names(),
        "pinned fixture out of sync with the registry's lattice vocabulary"
    );
}

#[test]
fn default_seed_digests_are_byte_identical_to_baseline() {
    let mut drift = Vec::new();
    for &(name, want) in PINNED {
        let got = family_digest(name);
        if got != want {
            drift.push(format!("{name}: pinned {want:016x}, got {got:016x}"));
        }
    }
    assert!(drift.is_empty(), "lattice drift:\n{}", drift.join("\n"));
}
