//! Streaming-vs-full checker differential over the reference corpus.
//!
//! The reference corpus is every registry example spec realized at the
//! layer budgets {2, 3, 4, 8} — legal and illegal alike, the streaming
//! checker walking a layout as a [`mlv_grid::StreamSource`] must
//! produce *exactly* the report the full-grid checker does: same error
//! list (values and order), same point totals, same metrics. On top of
//! the clean corpus, every [`inject::Strategy`] fault is applied to a
//! known-legal layout and must be caught through the streaming path
//! with the same `CheckError` kind — and, stronger, the identical
//! report.

use mlv_conformance::inject;
use mlv_core::rng::Rng;
use mlv_grid::checker;
use mlv_grid::layout::Layout;
use mlv_grid::metrics::LayoutMetrics;
use mlv_layout::{families, registry};
use mlv_topology::Graph;

/// Assert the streaming report equals the full-grid report on `layout`
/// (`CheckReport` carries no `PartialEq`; compare field by field).
fn assert_reports_agree(tag: &str, layout: &Layout, graph: Option<&Graph>) {
    let full = checker::check(layout, graph);
    let stream = mlv_grid::check_stream(layout, graph);
    assert_eq!(
        stream.errors, full.errors,
        "{tag}: streaming error list diverged from full checker"
    );
    assert_eq!(stream.wire_points, full.wire_points, "{tag}: wire points");
    assert_eq!(stream.node_points, full.node_points, "{tag}: node points");
    assert_eq!(
        mlv_grid::metrics_stream(layout),
        LayoutMetrics::of(layout),
        "{tag}: streaming metrics diverged"
    );
}

#[test]
fn streaming_checker_matches_full_on_reference_corpus() {
    let mut corpus = 0;
    for entry in registry::REGISTRY {
        let family = registry::parse(entry.example)
            .unwrap_or_else(|e| panic!("{}: bad example: {e}", entry.name));
        for layers in [2usize, 3, 4, 8] {
            let layout = family.realize(layers);
            assert_reports_agree(
                &format!("{} @ L={layers}", entry.example),
                &layout,
                Some(&family.graph),
            );
            corpus += 1;
        }
    }
    assert!(corpus >= 80, "reference corpus shrank: {corpus} layouts");
}

#[test]
fn every_injected_fault_caught_identically_through_streaming() {
    let fam = families::hypercube(4);
    let base = fam.realize(4);
    checker::assert_legal(&base, Some(&fam.graph));

    let mut rng = Rng::seed_from_u64(0x7157_11ED);
    for strategy in inject::Strategy::ALL {
        let mut mutated = base.clone();
        let Some(done) = inject::inject(&mut mutated, strategy, &mut rng) else {
            panic!(
                "{}: strategy not applicable to hypercube(4)",
                strategy.name()
            );
        };
        let stream = mlv_grid::check_stream(&mutated, Some(&fam.graph));
        let kinds: Vec<&'static str> = stream.errors.iter().map(|e| e.kind()).collect();
        assert!(
            kinds.contains(&strategy.expected_kind()),
            "{} ({}): streaming checker missed {}, saw {kinds:?}",
            strategy.name(),
            done.detail,
            strategy.expected_kind()
        );
        assert_reports_agree(
            &format!("inject {} ({})", strategy.name(), done.detail),
            &mutated,
            Some(&fam.graph),
        );
    }
}
