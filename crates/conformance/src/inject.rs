//! Seeded fault injection: controlled defects whose detection the
//! checker must guarantee.
//!
//! Each [`Strategy`] applies one minimal mutation to a (presumed legal)
//! layout and names the [`CheckError`] kind the checker is *guaranteed*
//! to report for it when run with the source graph as reference. The
//! strategies jointly cover every [`CheckError::KINDS`] entry — the
//! harness (and `mlv-layout`'s mutation suite) assert both directions:
//! every injection is caught, and every error kind has an injection
//! that triggers it.

use mlv_core::rng::Rng;
use mlv_grid::checker::CheckError;
use mlv_grid::geom::{Point3, Rect};
use mlv_grid::layout::{Layout, Wire};
use mlv_grid::path::WirePath;
use mlv_grid::pdk::Pdk;
use mlv_topology::NodeId;

/// One class of injected defect.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Drop one wire — the layout no longer realizes the graph.
    DeleteWire,
    /// Clone one wire verbatim — every point of it is now shared.
    DuplicateWire,
    /// Relabel a wire's `u` endpoint to a different placed node.
    RewireEndpoint,
    /// Shift a wire's every corner up by `L` layers (all out of budget).
    LayerEscape,
    /// Shift a wire's every corner down by `L` layers (all negative).
    NegativeLayer,
    /// Translate a wired node's footprint outside the bounding box.
    MoveNode,
    /// Copy one node's footprint onto another node of the same layer.
    OverlapNodes,
    /// Replace a wire's path with a single diagonal segment.
    DiagonalPath,
    /// Place a fresh node directly on a wire's interior point.
    NodeOnWire,
    /// Remove the placement of a wire's endpoint node.
    DeleteNode,
    /// Detour a planar run onto a layer whose preferred direction
    /// forbids it (PDK-only; needs a non-uniform stack).
    WrongDirection,
    /// Add a wire running parallel to an existing run at distance 1 on
    /// a pitch ≥ 2 layer (PDK-only; needs a non-uniform stack).
    PitchSqueeze,
}

impl Strategy {
    /// Every strategy, in declaration order.
    pub const ALL: [Strategy; 10] = [
        Strategy::DeleteWire,
        Strategy::DuplicateWire,
        Strategy::RewireEndpoint,
        Strategy::LayerEscape,
        Strategy::NegativeLayer,
        Strategy::MoveNode,
        Strategy::OverlapNodes,
        Strategy::DiagonalPath,
        Strategy::NodeOnWire,
        Strategy::DeleteNode,
    ];

    /// [`Strategy::ALL`] plus the PDK-only strategies — the cycle the
    /// harness uses when the PDK axis is enabled. Their guaranteed
    /// kinds jointly cover the full [`CheckError::KINDS`] universe,
    /// including [`CheckError::PDK_KINDS`].
    pub const ALL_WITH_PDK: [Strategy; 12] = [
        Strategy::DeleteWire,
        Strategy::DuplicateWire,
        Strategy::RewireEndpoint,
        Strategy::LayerEscape,
        Strategy::NegativeLayer,
        Strategy::MoveNode,
        Strategy::OverlapNodes,
        Strategy::DiagonalPath,
        Strategy::NodeOnWire,
        Strategy::DeleteNode,
        Strategy::WrongDirection,
        Strategy::PitchSqueeze,
    ];

    /// `true` for strategies that only exist on a non-uniform stack
    /// (they mutate direction/pitch legality, which the uniform grid
    /// cannot violate).
    pub fn needs_pdk(self) -> bool {
        matches!(self, Strategy::WrongDirection | Strategy::PitchSqueeze)
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::DeleteWire => "DeleteWire",
            Strategy::DuplicateWire => "DuplicateWire",
            Strategy::RewireEndpoint => "RewireEndpoint",
            Strategy::LayerEscape => "LayerEscape",
            Strategy::NegativeLayer => "NegativeLayer",
            Strategy::MoveNode => "MoveNode",
            Strategy::OverlapNodes => "OverlapNodes",
            Strategy::DiagonalPath => "DiagonalPath",
            Strategy::NodeOnWire => "NodeOnWire",
            Strategy::DeleteNode => "DeleteNode",
            Strategy::WrongDirection => "WrongDirection",
            Strategy::PitchSqueeze => "PitchSqueeze",
        }
    }

    /// The [`CheckError::kind`] the checker is guaranteed to report for
    /// this injection (the mutated layout may additionally trip others;
    /// `DeleteWire` needs the reference graph passed to `check`). The
    /// union over [`Strategy::ALL_WITH_PDK`] equals
    /// [`CheckError::KINDS`].
    pub fn expected_kind(self) -> &'static str {
        match self {
            Strategy::DeleteWire => "TopologyMismatch",
            Strategy::DuplicateWire => "WireConflict",
            Strategy::RewireEndpoint => "BadTerminal",
            Strategy::LayerEscape => "LayerOutOfRange",
            Strategy::NegativeLayer => "LayerOutOfRange",
            Strategy::MoveNode => "BadTerminal",
            Strategy::OverlapNodes => "NodeOverlap",
            Strategy::DiagonalPath => "BadPath",
            Strategy::NodeOnWire => "WireThroughNode",
            Strategy::DeleteNode => "MissingNode",
            Strategy::WrongDirection => "DirectionViolation",
            Strategy::PitchSqueeze => "PitchViolation",
        }
    }
}

/// Record of one applied injection.
#[derive(Clone, Debug)]
pub struct Injection {
    /// Which strategy was applied.
    pub strategy: Strategy,
    /// What exactly was mutated (for failure reports).
    pub detail: String,
}

/// Apply `strategy` to `layout` at a seeded location. Returns `None`
/// when the layout cannot host the mutation (no wires, a single node,
/// no interior wire point, …) — the layout is untouched in that case.
/// PDK-only strategies always return `None` here; use
/// [`inject_with_pdk`] for those.
pub fn inject(layout: &mut Layout, strategy: Strategy, rng: &mut Rng) -> Option<Injection> {
    inject_with_pdk(layout, strategy, rng, None)
}

/// [`inject`] with a technology stack: the PDK-only strategies mutate
/// direction/pitch legality against `pdk` (they return `None` without
/// a non-uniform stack); every other strategy ignores `pdk` entirely.
pub fn inject_with_pdk(
    layout: &mut Layout,
    strategy: Strategy,
    rng: &mut Rng,
    pdk: Option<&Pdk>,
) -> Option<Injection> {
    let done = |detail: String| Some(Injection { strategy, detail });
    match strategy {
        Strategy::DeleteWire => {
            if layout.wires.is_empty() {
                return None;
            }
            let i = rng.gen_range_usize(0..layout.wires.len());
            let w = layout.wires.remove(i);
            done(format!("deleted wire {i} ({},{})", w.u, w.v))
        }
        Strategy::DuplicateWire => {
            if layout.wires.is_empty() {
                return None;
            }
            let i = rng.gen_range_usize(0..layout.wires.len());
            let w = layout.wires[i].clone();
            layout.wires.push(w);
            done(format!("duplicated wire {i}"))
        }
        Strategy::RewireEndpoint => {
            if layout.wires.is_empty() {
                return None;
            }
            let i = rng.gen_range_usize(0..layout.wires.len());
            let (u, v) = (layout.wires[i].u, layout.wires[i].v);
            // any placed node that is neither endpoint: its footprint is
            // disjoint from u's, so the start terminal cannot satisfy it
            let other = layout
                .nodes
                .iter()
                .map(|n| n.node)
                .find(|&c| c != u && c != v)?;
            layout.wires[i].u = other;
            done(format!("rewired wire {i} endpoint {u} -> {other}"))
        }
        Strategy::LayerEscape | Strategy::NegativeLayer => {
            if layout.wires.is_empty() {
                return None;
            }
            let i = rng.gen_range_usize(0..layout.wires.len());
            let shift = if strategy == Strategy::LayerEscape {
                layout.layers as i32
            } else {
                -(layout.layers as i32)
            };
            // a uniform z-shift keeps the path axis-aligned and
            // self-avoiding, so LayerOutOfRange is reported (BadPath
            // would short-circuit the per-wire layer scan)
            let corners: Vec<Point3> = layout.wires[i]
                .path
                .corners()
                .iter()
                .map(|c| Point3::new(c.x, c.y, c.z + shift))
                .collect();
            layout.wires[i].path = WirePath::new(corners);
            done(format!("shifted wire {i} layers by {shift}"))
        }
        Strategy::MoveNode => {
            if layout.wires.is_empty() {
                return None;
            }
            let i = rng.gen_range_usize(0..layout.wires.len());
            let u = layout.wires[i].u;
            let bb = layout.bounding_box()?;
            let dx = bb.x1 - bb.x0 + 1000;
            let n = layout.nodes.iter_mut().find(|n| n.node == u)?;
            n.rect = Rect::new(n.rect.x0 + dx, n.rect.y0, n.rect.x1 + dx, n.rect.y1);
            done(format!("moved node {u} by dx={dx}"))
        }
        Strategy::OverlapNodes => {
            let pair = (0..layout.nodes.len()).find_map(|i| {
                ((i + 1)..layout.nodes.len())
                    .find(|&j| layout.nodes[j].layer == layout.nodes[i].layer)
                    .map(|j| (i, j))
            });
            let (i, j) = pair?;
            layout.nodes[j].rect = layout.nodes[i].rect;
            done(format!(
                "node {} footprint copied onto node {}",
                layout.nodes[i].node, layout.nodes[j].node
            ))
        }
        Strategy::DiagonalPath => {
            if layout.wires.is_empty() {
                return None;
            }
            let i = rng.gen_range_usize(0..layout.wires.len());
            let s = layout.wires[i].path.start();
            layout.wires[i].path = WirePath::new(vec![s, Point3::new(s.x + 1, s.y + 1, s.z)]);
            done(format!("wire {i} replaced with a diagonal stub"))
        }
        Strategy::NodeOnWire => {
            // interior point of some wire (never a terminal of any wire,
            // by point-disjointness of the legal input layout)
            let fresh: NodeId = layout.nodes.iter().map(|n| n.node).max()? + 1;
            let wire_count = layout.wires.len();
            if wire_count == 0 {
                return None;
            }
            let first = rng.gen_range_usize(0..wire_count);
            for k in 0..wire_count {
                let i = (first + k) % wire_count;
                let pts: Vec<Point3> = layout.wires[i].path.points().collect();
                if pts.len() < 3 {
                    continue;
                }
                let p = pts[rng.gen_range_usize(1..pts.len() - 1)];
                layout.nodes.push(mlv_grid::layout::NodePlacement {
                    node: fresh,
                    rect: Rect::new(p.x, p.y, p.x, p.y),
                    layer: p.z,
                });
                return done(format!("node {fresh} placed on wire {i} at {p:?}"));
            }
            None
        }
        Strategy::DeleteNode => {
            if layout.wires.is_empty() {
                return None;
            }
            let i = rng.gen_range_usize(0..layout.wires.len());
            let u = layout.wires[i].u;
            let pos = layout.nodes.iter().position(|n| n.node == u)?;
            layout.nodes.remove(pos);
            done(format!("removed placement of node {u}"))
        }
        Strategy::WrongDirection => {
            let pdk = pdk.filter(|p| !p.is_uniform())?;
            if layout.wires.is_empty() {
                return None;
            }
            // find a planar run plus an in-budget layer whose preferred
            // direction forbids that run's axis; detour the run there
            let first = rng.gen_range_usize(0..layout.wires.len());
            for k in 0..layout.wires.len() {
                let i = (first + k) % layout.wires.len();
                let corners = layout.wires[i].path.corners().to_vec();
                for (j, pair) in corners.windows(2).enumerate() {
                    let (a, b) = (pair[0], pair[1]);
                    if a.z != b.z || a.z < 0 || (a.x == b.x && a.y == b.y) {
                        continue;
                    }
                    let forbids = |z: usize| {
                        let d = pdk.layer_at(z).dir;
                        if a.x != b.x {
                            !d.allows_x()
                        } else {
                            !d.allows_y()
                        }
                    };
                    let Some(zf) = (0..layout.layers).find(|&z| forbids(z)) else {
                        continue;
                    };
                    let mut path = corners[..=j].to_vec();
                    path.push(Point3::new(a.x, a.y, zf as i32));
                    path.push(Point3::new(b.x, b.y, zf as i32));
                    path.extend_from_slice(&corners[j + 1..]);
                    layout.wires[i].path = WirePath::new(path);
                    return done(format!(
                        "detoured wire {i} run {a:?}->{b:?} onto layer {zf} ({})",
                        pdk.layer_at(zf).name
                    ));
                }
            }
            None
        }
        Strategy::PitchSqueeze => {
            let pdk = pdk.filter(|p| !p.is_uniform())?;
            if layout.wires.is_empty() {
                return None;
            }
            // find a non-exempt planar run on a pitch >= 2 layer and
            // drop a parallel wire one track away; the intruder's own
            // terminals sit off its long run, so it is not stub-exempt
            let first = rng.gen_range_usize(0..layout.wires.len());
            for k in 0..layout.wires.len() {
                let i = (first + k) % layout.wires.len();
                let w = &layout.wires[i];
                let (start, end) = (w.path.start(), w.path.end());
                let corners = w.path.corners().to_vec();
                for pair in corners.windows(2) {
                    let (a, b) = (pair[0], pair[1]);
                    if a.z != b.z || a.z < 0 || (a.x == b.x && a.y == b.y) {
                        continue;
                    }
                    if pdk.layer_at(a.z as usize).pitch <= 1 {
                        continue;
                    }
                    let x_run = a.y == b.y;
                    let (fixed, lo, hi) = if x_run {
                        (a.y, a.x.min(b.x), a.x.max(b.x))
                    } else {
                        (a.x, a.y.min(b.y), a.y.max(b.y))
                    };
                    let covers = |p: Point3| {
                        let (pf, pl) = if x_run { (p.y, p.x) } else { (p.x, p.y) };
                        pf == fixed && (lo..=hi).contains(&pl)
                    };
                    if covers(start) || covers(end) {
                        continue; // stub-exempt host run: pick another
                    }
                    let pt = |along: i64, across: i64| {
                        if x_run {
                            Point3::new(along, across, a.z)
                        } else {
                            Point3::new(across, along, a.z)
                        }
                    };
                    let (u, v) = (w.u, w.v);
                    layout.wires.push(Wire {
                        u,
                        v,
                        path: WirePath::new(vec![
                            pt(lo, fixed + 2),
                            pt(lo, fixed + 1),
                            pt(hi, fixed + 1),
                            pt(hi, fixed + 2),
                        ]),
                    });
                    return done(format!(
                        "squeezed a parallel wire 1 from run at {fixed} \
                         (layer {}, pitch {})",
                        a.z,
                        pdk.layer_at(a.z as usize).pitch
                    ));
                }
            }
            None
        }
    }
}

/// Sanity: the strategies' guaranteed kinds cover the whole
/// [`CheckError::KINDS`] universe. The conformance harness re-asserts
/// this dynamically (injection → checker → kind observed); this is the
/// static half.
pub fn uncovered_kinds() -> Vec<&'static str> {
    CheckError::KINDS
        .iter()
        .copied()
        .filter(|k| {
            !Strategy::ALL_WITH_PDK
                .iter()
                .any(|s| s.expected_kind() == *k)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_coverage_is_complete() {
        assert!(
            uncovered_kinds().is_empty(),
            "no strategy guarantees: {:?}",
            uncovered_kinds()
        );
    }

    #[test]
    fn strategy_names_unique() {
        let names: std::collections::HashSet<_> =
            Strategy::ALL_WITH_PDK.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Strategy::ALL_WITH_PDK.len());
    }

    #[test]
    fn all_is_a_prefix_of_all_with_pdk() {
        assert_eq!(
            Strategy::ALL[..],
            Strategy::ALL_WITH_PDK[..Strategy::ALL.len()]
        );
        assert!(Strategy::ALL.iter().all(|s| !s.needs_pdk()));
        assert!(Strategy::ALL_WITH_PDK[Strategy::ALL.len()..]
            .iter()
            .all(|s| s.needs_pdk()));
    }
}
