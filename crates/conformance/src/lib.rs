//! Cross-family conformance harness: deterministic fuzzing of the full
//! layout pipeline over a seeded parameter lattice, four oracles per
//! case, plus fault injection that must be caught by the checker.
//!
//! A run draws `cases_per_family` seeded configurations for each of the
//! [`cases::family_names`] families, realizes every one both at its
//! drawn layer budget and at the 2-layer Thompson point, and applies:
//!
//! 1. [`oracles::checker_oracle`] — grid legality against the graph;
//! 2. [`oracles::differential_oracle`] — direct vs folded-Thompson
//!    shared invariants;
//! 3. [`oracles::prediction_oracle`] — `mlv-formulas` leading-constant
//!    envelopes;
//! 4. [`oracles::tiled_oracle`] — tiled-vs-flat differential: the tiled
//!    IR materializes byte-identically to the flat layout and its
//!    streaming checker/metrics agree with the full-grid versions;
//! 5. [`oracles::pdk_oracle`] (PDK axis only, [`Config::pdk_axis`]) —
//!    the uniform PDK is the identity (fresh realization digest +
//!    physical metrics match the PDK-free run), the `hv6` stack
//!    realizes legally under direction/pitch checks, and physical
//!    metrics obey the pitch-scaling laws;
//!
//! and then one [`inject::Strategy`] per case (cycling so every
//! strategy — and hence every `CheckError` kind — is exercised) to a
//! clone of the layout, asserting the checker reports the strategy's
//! guaranteed error kind. With the PDK axis on, the cycle extends to
//! [`inject::Strategy::ALL_WITH_PDK`]: the PDK-only strategies mutate
//! a fresh `hv6` realization and must be caught by
//! `checker::check_with_pdk`.
//!
//! Everything is driven by the `mlv-core` RNG and executor:
//! reproduce any failure with `MLV_SEED=<printed seed>`; results are
//! byte-identical for any `MLV_THREADS` because each case re-seeds from
//! a pre-drawn sub-seed and the executor preserves item order.

pub mod cases;
pub mod inject;
pub mod oracles;

use mlv_core::exec;
use mlv_core::rng::Rng;
use mlv_grid::checker::{self, CheckError};
use mlv_layout::engine::{CheckStatus, Engine, EngineOptions, Job, JobOutcome};
use std::collections::BTreeSet;

/// Run configuration (all knobs have env fallbacks, see
/// [`Config::from_env`]).
#[derive(Clone, Debug)]
pub struct Config {
    /// Master seed; every family and case derives its own sub-seed.
    pub seed: u64,
    /// Seeded configurations drawn per family.
    pub cases_per_family: usize,
    /// Families to run (subset of [`cases::family_names`]).
    pub families: Vec<String>,
    /// Apply fault injection (on by default).
    pub inject: bool,
    /// Exercise the technology axis: run [`oracles::pdk_oracle`] per
    /// case and extend the injection cycle to the PDK-only strategies
    /// (off by default; env `MLV_PDK_AXIS=1`).
    pub pdk_axis: bool,
}

/// Default master seed (the paper's year).
pub const DEFAULT_SEED: u64 = 2000;
/// Default cases per family — at least one full cycle through the
/// injection strategies ([`inject::Strategy::ALL`]).
pub const DEFAULT_CASES: usize = 12;

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: DEFAULT_SEED,
            cases_per_family: DEFAULT_CASES,
            families: cases::family_names()
                .into_iter()
                .map(String::from)
                .collect(),
            inject: true,
            pdk_axis: false,
        }
    }
}

impl Config {
    /// Default config with `MLV_SEED` / `MLV_CONFORMANCE_CASES`
    /// overrides applied (`MLV_THREADS` is honored by the `mlv-core`
    /// executor itself).
    pub fn from_env() -> Self {
        let mut c = Config::default();
        if let Some(s) = env_u64("MLV_SEED") {
            c.seed = s;
        }
        if let Some(n) = env_u64("MLV_CONFORMANCE_CASES") {
            c.cases_per_family = n as usize;
        }
        if let Some(n) = env_u64("MLV_PDK_AXIS") {
            c.pdk_axis = n != 0;
        }
        c
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// Per-family outcome — one JSON line each in reports.
#[derive(Clone, Debug)]
pub struct FamilyResult {
    /// Family name (from [`cases::family_names`]).
    pub family: String,
    /// Cases evaluated.
    pub cases: usize,
    /// Cases carrying closed-form predictions.
    pub predicted: usize,
    /// Fault injections applied.
    pub injections: usize,
    /// FNV-1a digest of every case label in order — a fingerprint of
    /// the exact lattice the seed produced (two runs that print the
    /// same digest evaluated the same configurations).
    pub lattice: u64,
    /// `CheckError` kinds observed (and caught) across the injections.
    pub kinds: BTreeSet<&'static str>,
    /// All oracle violations and surviving injections.
    pub violations: Vec<String>,
}

impl FamilyResult {
    /// `true` when no oracle was violated and no injection survived.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line JSON report, stable for a fixed seed.
    pub fn json_line(&self) -> String {
        let kinds: Vec<String> = self.kinds.iter().map(|k| format!("\"{k}\"")).collect();
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", json_escape(v)))
            .collect();
        format!(
            "{{\"family\":\"{}\",\"status\":\"{}\",\"cases\":{},\"predicted\":{},\
             \"injections\":{},\"lattice\":\"{:016x}\",\"kinds\":[{}],\"violations\":[{}]}}",
            json_escape(&self.family),
            if self.passed() { "ok" } else { "fail" },
            self.cases,
            self.predicted,
            self.injections,
            self.lattice,
            kinds.join(","),
            violations.join(",")
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Whole-run outcome.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Master seed the run used (echo for reproduction).
    pub seed: u64,
    /// Whether the technology axis was on ([`Config::pdk_axis`]).
    pub pdk_axis: bool,
    /// One result per requested family, in request order.
    pub results: Vec<FamilyResult>,
}

impl RunReport {
    /// `CheckError` kinds *not* observed by any injection this run —
    /// must be empty for a full-lattice run with injection enabled.
    /// Without the PDK axis the direction/pitch kinds
    /// ([`CheckError::PDK_KINDS`]) are unreachable and excluded from
    /// the accounting.
    pub fn uncovered_kinds(&self) -> Vec<&'static str> {
        let covered: BTreeSet<&str> = self
            .results
            .iter()
            .flat_map(|r| r.kinds.iter().copied())
            .collect();
        CheckError::KINDS
            .iter()
            .copied()
            .filter(|k| self.pdk_axis || !CheckError::PDK_KINDS.contains(k))
            .filter(|k| !covered.contains(k))
            .collect()
    }

    /// `true` when every family passed and (with injection) every
    /// error kind was exercised.
    pub fn passed(&self, require_full_coverage: bool) -> bool {
        self.results.iter().all(|r| r.passed())
            && (!require_full_coverage || self.uncovered_kinds().is_empty())
    }
}

use mlv_grid::hasher::{fnv1a, FNV_BASIS};

/// FNV-1a digest over case labels in order — the per-family lattice
/// fingerprint [`FamilyResult::lattice`] reports. Exposed so fixture
/// tests can pin the digests a seed must produce without running the
/// oracles.
pub fn lattice_digest<'a>(labels: impl IntoIterator<Item = &'a str>) -> u64 {
    labels
        .into_iter()
        .fold(FNV_BASIS, |h, l| fnv1a(h, l.as_bytes()))
}

/// Stable per-family sub-seed (re-exported from the batch engine so
/// the harness and `mlv sweep --lattice` derive identical per-family
/// RNG streams from one formula).
pub use mlv_layout::engine::family_seed;

/// Execute the conformance run described by `config`.
///
/// Realizations go through one [`mlv_layout::engine::Engine`] shared
/// across every family: each case's direct and Thompson layouts are
/// one engine batch, so duplicate specs — every `L = 2` draw's
/// Thompson twin, and re-drawn parameters from small pools — are
/// realized once and served from the memo cache thereafter.
pub fn run(config: &Config) -> RunReport {
    let mut engine = Engine::new(EngineOptions {
        check: true,
        keep_layouts: true,
        cache_capacity: 4096,
        ..EngineOptions::default()
    });
    let results = config
        .families
        .iter()
        .map(|name| run_family(name, config, &mut engine))
        .collect();
    RunReport {
        seed: config.seed,
        pdk_axis: config.pdk_axis,
        results,
    }
}

fn run_family(name: &str, config: &Config, engine: &mut Engine) -> FamilyResult {
    let _span = mlv_core::span!("conformance.family", name = name);
    assert!(
        cases::family_names().contains(&name),
        "unknown family '{name}' (choose from {:?})",
        cases::family_names()
    );
    // pre-draw one sub-seed per case; each case is a pure function of
    // (family, sub-seed, case index), so the report is identical for
    // every thread count
    let mut rng = Rng::seed_from_u64(family_seed(config.seed, name));
    let seeds: Vec<u64> = (0..config.cases_per_family)
        .map(|_| rng.next_u64())
        .collect();
    // stage 1 — construct the cases (parallel: pure per-seed); keep
    // each case's post-draw RNG for the injection stage so the drawn
    // sequence matches the pre-engine harness exactly
    let built: Vec<(cases::Case, Rng)> = exec::par_map(&seeds, |_, &seed| {
        let mut rng = Rng::seed_from_u64(seed);
        let case = cases::build_case(name, &mut rng);
        (case, rng)
    });
    // stage 2 — one engine batch realizes (and checks) every direct +
    // Thompson layout; results come back in job order
    let jobs: Vec<Job> = built
        .iter()
        .flat_map(|(case, _)| {
            let at = |layers| Job {
                label: case.label.clone(),
                family: case.family.clone(),
                layers,
                pdk: None,
            };
            [at(case.layers), at(2)]
        })
        .collect();
    let batch = engine.run(&jobs);
    // stage 3 — remaining oracles + fault injection per case
    let outcomes = exec::par_map(&built, |i, (case, rng)| {
        run_case(
            case,
            rng.clone(),
            i,
            config,
            &batch.results[2 * i].outcome,
            &batch.results[2 * i + 1].outcome,
        )
    });

    let mut result = FamilyResult {
        family: name.to_string(),
        cases: outcomes.len(),
        predicted: 0,
        injections: 0,
        lattice: FNV_BASIS,
        kinds: BTreeSet::new(),
        violations: Vec::new(),
    };
    for mut o in outcomes {
        result.predicted += o.predicted as usize;
        result.injections += o.injected as usize;
        result.lattice = fnv1a(result.lattice, o.label.as_bytes());
        result.kinds.extend(o.kinds);
        result.violations.append(&mut o.violations);
    }
    result
}

struct CaseOutcome {
    label: String,
    predicted: bool,
    injected: bool,
    kinds: BTreeSet<&'static str>,
    violations: Vec<String>,
}

fn run_case(
    case: &cases::Case,
    mut rng: Rng,
    index: usize,
    config: &Config,
    direct: &JobOutcome,
    thompson: &JobOutcome,
) -> CaseOutcome {
    let _span = mlv_core::span!("conformance.case");
    // oracle 1 ran inside the engine (CheckStatus carries the same
    // truncated error summary checker_oracle printed)
    let mut violations = Vec::new();
    for (which, outcome) in [("direct", direct), ("thompson", thompson)] {
        if let CheckStatus::Illegal(summary) = &outcome.check {
            violations.push(format!(
                "[{}] {which} layout illegal: {summary}",
                case.label
            ));
        }
    }
    let dl = direct.layout.as_ref().expect("engine run keeps layouts");
    let tl = thompson.layout.as_ref().expect("engine run keeps layouts");
    violations.extend(oracles::differential_oracle(
        case,
        dl,
        &direct.metrics,
        tl,
        &thompson.metrics,
    ));
    violations.extend(oracles::prediction_oracle(
        case,
        &direct.metrics,
        &thompson.metrics,
    ));
    violations.extend(oracles::tiled_oracle(case, direct));
    if config.pdk_axis {
        violations.extend(oracles::pdk_oracle(case, direct));
    }

    let mut kinds = BTreeSet::new();
    let mut injected = false;
    if config.inject {
        // cycle so every strategy appears within one trip through the
        // axis-dependent strategy list
        let cycle: &[inject::Strategy] = if config.pdk_axis {
            &inject::Strategy::ALL_WITH_PDK
        } else {
            &inject::Strategy::ALL
        };
        let strategy = cycle[index % cycle.len()];
        // PDK-only strategies need direction/pitch structure to
        // violate: mutate a fresh hv6 realization instead of the
        // engine's uniform layout, and check against that stack
        let hv6 = strategy.needs_pdk().then(mlv_grid::pdk::Pdk::hv6);
        let mut mutated = match &hv6 {
            Some(pdk) => mlv_layout::realize_fresh(
                &case.family.spec,
                &mlv_layout::RealizeOptions::with_pdk(case.layers, pdk.clone()),
            ),
            None => dl.clone(),
        };
        if let Some(done) = inject::inject_with_pdk(&mut mutated, strategy, &mut rng, hv6.as_ref())
        {
            injected = true;
            let report = match &hv6 {
                Some(pdk) => checker::check_with_pdk(&mutated, Some(&case.family.graph), pdk),
                None => checker::check(&mutated, Some(&case.family.graph)),
            };
            let seen: BTreeSet<&'static str> = report.errors.iter().map(|e| e.kind()).collect();
            if !seen.contains(strategy.expected_kind()) {
                violations.push(format!(
                    "[{}] injection {} survived ({}): expected {}, checker saw {:?}",
                    case.label,
                    strategy.name(),
                    done.detail,
                    strategy.expected_kind(),
                    seen
                ));
            }
            kinds.extend(seen);
        }
    }
    mlv_core::counter!("conformance.injections", injected as u64);
    mlv_core::counter!("conformance.violations", violations.len() as u64);
    CaseOutcome {
        label: case.label.clone(),
        predicted: case.predicted.is_some(),
        injected,
        kinds,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlv_grid::metrics::LayoutMetrics;

    #[test]
    fn family_seeds_are_stable_and_distinct() {
        let a = family_seed(7, "hypercube");
        assert_eq!(a, family_seed(7, "hypercube"));
        assert_ne!(a, family_seed(8, "hypercube"));
        let distinct: BTreeSet<u64> = cases::family_names()
            .iter()
            .map(|f| family_seed(7, f))
            .collect();
        assert_eq!(distinct.len(), cases::family_names().len());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    /// Envelope recalibration sweep: prints observed Thompson-point
    /// ratio extremes per family over a dense seeded sample of the
    /// lattice. Run after layout-engine changes with
    /// `cargo test -p mlv-conformance tune_envelopes -- --ignored --nocapture`
    /// and update the `*_ENV` constants in the mlv-layout registry
    /// (keep ≥ 25% slack beyond the printed extremes).
    #[test]
    #[ignore]
    fn tune_envelopes() {
        for name in cases::family_names() {
            let mut rng = Rng::seed_from_u64(family_seed(DEFAULT_SEED, name));
            let (mut alo, mut ahi) = (f64::INFINITY, 0.0f64);
            let (mut wlo, mut whi) = (f64::INFINITY, 0.0f64);
            let mut any = false;
            for _ in 0..64 {
                let mut case_rng = Rng::seed_from_u64(rng.next_u64());
                let case = cases::build_case(name, &mut case_rng);
                let Some(pred) = &case.predicted else {
                    continue;
                };
                any = true;
                let tm = LayoutMetrics::of(&case.family.realize(2));
                let ar = tm.area as f64 / pred.at_thompson.area;
                alo = alo.min(ar);
                ahi = ahi.max(ar);
                if let Some(pw) = pred.at_thompson.max_wire {
                    let wr = tm.max_wire_planar as f64 / pw;
                    wlo = wlo.min(wr);
                    whi = whi.max(wr);
                }
            }
            if any {
                println!("{name:10} area [{alo:.3}, {ahi:.3}]  wire [{wlo:.3}, {whi:.3}]");
            } else {
                println!("{name:10} (no closed-form prediction)");
            }
        }
    }

    #[test]
    fn run_is_observable_under_a_trace() {
        let config = Config {
            seed: 1,
            cases_per_family: 3,
            families: vec!["hypercube".into(), "mesh".into()],
            inject: true,
            pdk_axis: false,
        };
        let trace = mlv_core::trace::Trace::new();
        let report = trace.collect(|| run(&config));
        let agg = trace.aggregate();
        // one family span per family (keyed by name), one case span
        // per evaluated case
        for f in &config.families {
            let key = format!("conformance.family{{name={f}}}");
            let s = agg.span(&key).unwrap_or_else(|| panic!("missing {key}"));
            assert_eq!(s.count, 1);
        }
        let cases = agg.span("conformance.case").expect("case span");
        assert_eq!(cases.count as usize, config.families.len() * 3);
        // counters reconcile with the report
        let injected: u64 = report.results.iter().map(|r| r.injections as u64).sum();
        assert!(injected > 0);
        assert_eq!(agg.counter("conformance.injections"), injected);
        let violations: u64 = report
            .results
            .iter()
            .map(|r| r.violations.len() as u64)
            .sum();
        assert_eq!(agg.counter("conformance.violations"), violations);
        // the harness realizes through the engine, so pipeline pass
        // spans surface in the same aggregate
        assert!(agg.span("pipeline").is_some());
        // an identical untraced run is unaffected by observation
        let replay = run(&config);
        assert_eq!(report.results[0].json_line(), replay.results[0].json_line());
    }

    #[test]
    fn single_family_smoke() {
        let config = Config {
            seed: 1,
            cases_per_family: 3,
            families: vec!["hypercube".into()],
            inject: true,
            pdk_axis: false,
        };
        let report = run(&config);
        assert_eq!(report.results.len(), 1);
        let r = &report.results[0];
        assert!(r.passed(), "violations: {:?}", r.violations);
        assert_eq!(r.cases, 3);
        assert!(r.injections > 0);
        // partial run: full kind coverage is NOT required
        assert!(report.passed(false));
        let line = r.json_line();
        assert!(line.starts_with("{\"family\":\"hypercube\""));
        assert_eq!(line, run(&config).results[0].json_line());
    }
}
