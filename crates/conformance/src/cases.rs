//! The seeded parameter lattice: which (family, parameters, layers)
//! configurations the harness exercises.
//!
//! The per-family parameter pools, draw procedures, and calibrated
//! prediction envelopes live in the [`mlv_layout::registry`] — one
//! table shared with the CLI parser and `mlv families`. A case is one
//! seeded draw from a family's pool plus a seeded layer budget. The
//! pools are fixed, so the envelopes can be calibrated against the
//! *whole* reachable lattice — any draw outside its envelope is a
//! regression, not noise.

use mlv_core::rng::Rng;
use mlv_formulas::predictions::Prediction;
use mlv_layout::families::Family;
use mlv_layout::registry;

/// Measured/predicted ratio bounds at the Thompson (L = 2) point
/// (re-exported from the registry, where the per-family constants
/// live).
pub type Envelope = registry::RatioEnvelope;

/// Every family name the lattice covers (also the `--families` filter
/// vocabulary of the CLI): the registry entries that carry a lattice,
/// in reporting order.
pub fn family_names() -> Vec<&'static str> {
    registry::lattice_names()
}

use mlv_layout::registry::LAYER_POOL;

/// Closed-form expectations for one case, where the paper provides them.
#[derive(Clone, Debug)]
pub struct CasePrediction {
    /// Leading-term prediction at the 2-layer (Thompson) point.
    pub at_thompson: Prediction,
    /// Leading-term prediction at the case's layer budget.
    pub at_layers: Prediction,
    /// Calibrated ratio envelope (see [`crate::oracles`]).
    pub envelope: Envelope,
}

/// One configuration to conformance-test.
pub struct Case {
    /// Human-readable `family:params L=<layers>` label for reports.
    pub label: String,
    /// Layer budget the direct layout is realized at.
    pub layers: usize,
    /// The graph + orthogonal spec under test.
    pub family: Family,
    /// Paper predictions, `None` for families without closed forms
    /// (cluster-c, Cayley/generic).
    pub predicted: Option<CasePrediction>,
}

/// Build one seeded case for `name`. Panics on unknown family names —
/// validate against [`family_names`] first.
pub fn build_case(name: &str, rng: &mut Rng) -> Case {
    let lattice = registry::find(name)
        .and_then(|e| e.lattice.as_ref())
        .unwrap_or_else(|| panic!("unknown conformance family '{name}'"));
    let layers = LAYER_POOL[rng.gen_range_usize(0..LAYER_POOL.len())];
    let draw = (lattice.draw)(rng);
    let predicted = draw.predict.map(|predict| CasePrediction {
        at_thompson: predict(2),
        at_layers: predict(layers),
        envelope: lattice
            .envelope
            .expect("prediction-bearing lattice entry without an envelope"),
    });
    Case {
        label: format!("{} L={layers}", draw.label),
        layers,
        family: draw.family,
        predicted,
    }
}
