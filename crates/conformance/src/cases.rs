//! The seeded parameter lattice: which (family, parameters, layers)
//! configurations the harness exercises.
//!
//! Every family has a small pool of checker-affordable parameter
//! choices; a case is one seeded draw from that pool plus a seeded
//! layer budget. The pools are fixed, so the prediction envelopes in
//! [`crate::oracles`] can be calibrated against the *whole* reachable
//! lattice — any draw outside its envelope is a regression, not noise.

use mlv_core::rng::Rng;
use mlv_formulas::predictions::{self, Prediction};
use mlv_layout::families::{self, Family};
use mlv_topology::cluster::ClusterKind;

/// Every family name the lattice covers (also the `--families` filter
/// vocabulary of the CLI).
pub const FAMILY_NAMES: [&str; 13] = [
    "hypercube",
    "karyn",
    "mesh",
    "genhyper",
    "butterfly",
    "ccc",
    "folded",
    "enhanced",
    "hsn",
    "hhn",
    "isn",
    "clusterc",
    "star",
];

/// Layer budgets drawn per case (even, odd, and the degenerate L=2).
const LAYER_POOL: [usize; 6] = [2, 3, 4, 5, 6, 8];

/// Measured/predicted ratio bounds at the Thompson (L = 2) point.
#[derive(Clone, Copy, Debug)]
pub struct Envelope {
    /// `(lo, hi)` for `measured_area / predicted_area`.
    pub area: (f64, f64),
    /// `(lo, hi)` for `measured_max_wire_planar / predicted_max_wire`,
    /// when the paper states a max-wire leading term.
    pub wire: Option<(f64, f64)>,
}

/// Closed-form expectations for one case, where the paper provides them.
#[derive(Clone, Debug)]
pub struct CasePrediction {
    /// Leading-term prediction at the 2-layer (Thompson) point.
    pub at_thompson: Prediction,
    /// Leading-term prediction at the case's layer budget.
    pub at_layers: Prediction,
    /// Calibrated ratio envelope (see [`crate::oracles`]).
    pub envelope: Envelope,
}

/// One configuration to conformance-test.
pub struct Case {
    /// Human-readable `family:params L=<layers>` label for reports.
    pub label: String,
    /// Layer budget the direct layout is realized at.
    pub layers: usize,
    /// The graph + orthogonal spec under test.
    pub family: Family,
    /// Paper predictions, `None` for families without closed forms
    /// (cluster-c, Cayley/generic).
    pub predicted: Option<CasePrediction>,
}

fn pick<T: Copy>(rng: &mut Rng, pool: &[T]) -> T {
    pool[rng.gen_range_usize(0..pool.len())]
}

/// Build one seeded case for `name`. Panics on unknown family names —
/// validate against [`FAMILY_NAMES`] first.
pub fn build_case(name: &str, rng: &mut Rng) -> Case {
    let layers = pick(rng, &LAYER_POOL);
    let (label, family, predicted) = match name {
        "hypercube" => {
            let n = pick(rng, &[3usize, 4, 5, 6]);
            let fam = families::hypercube(n);
            let pred = paired(|l| predictions::hypercube(1 << n, l), layers, HYPERCUBE_ENV);
            (format!("hypercube:{n}"), fam, Some(pred))
        }
        "karyn" => {
            let (k, n) = pick(rng, &[(3usize, 2usize), (4, 2), (5, 2), (3, 3)]);
            let fold = rng.gen_bool(0.5);
            let fam = families::karyn_cube(k, n, fold);
            let pred = paired(|l| predictions::karyn(k, n, l), layers, KARYN_ENV);
            (
                format!("karyn:{k},{n}{}", if fold { " folded" } else { "" }),
                fam,
                Some(pred),
            )
        }
        "mesh" => {
            let (k, n) = pick(rng, &[(3usize, 2usize), (4, 2), (5, 2), (3, 3)]);
            let fam = families::karyn_mesh(k, n);
            let pred = paired(|l| predictions::karyn_mesh(k, n, l), layers, MESH_ENV);
            (format!("mesh:{k},{n}"), fam, Some(pred))
        }
        "genhyper" => {
            // uniform radices carry predictions; mixed radices are
            // exercised checker+differential-only
            let uniform = rng.gen_bool(0.7);
            if uniform {
                let (r, n) = pick(rng, &[(3usize, 2usize), (4, 2), (5, 2), (3, 3)]);
                let fam = families::genhyper(&vec![r; n]);
                let pred = paired(|l| predictions::genhyper(r, n, l), layers, GENHYPER_ENV);
                (format!("ghc:{r}^{n}"), fam, Some(pred))
            } else {
                let radices: &[usize] = pick(rng, &[&[4usize, 3][..], &[5, 3][..], &[4, 3, 2][..]]);
                let fam = families::genhyper(radices);
                (format!("ghc:{radices:?}"), fam, None)
            }
        }
        "butterfly" => {
            let (m, b) = pick(rng, &[(3usize, 0usize), (4, 0), (4, 1)]);
            let fam = families::butterfly_clustered(m, b);
            let n_nodes = m << m;
            let pred = paired(
                |l| predictions::butterfly(n_nodes, l),
                layers,
                BUTTERFLY_ENV,
            );
            (format!("butterfly:{m},{b}"), fam, Some(pred))
        }
        "ccc" => {
            let n = pick(rng, &[3usize, 4]);
            let fam = families::ccc(n);
            let n_nodes = n << n;
            let pred = paired(|l| predictions::ccc(n_nodes, l), layers, CCC_ENV);
            (format!("ccc:{n}"), fam, Some(pred))
        }
        "folded" => {
            let n = pick(rng, &[3usize, 4, 5]);
            let fam = families::folded_hypercube(n);
            let pred = paired(
                |l| predictions::folded_hypercube(1 << n, l),
                layers,
                FOLDED_ENV,
            );
            (format!("folded:{n}"), fam, Some(pred))
        }
        "enhanced" => {
            let n = pick(rng, &[3usize, 4, 5]);
            let seed = rng.gen_range_u64(1..1_000_000);
            let fam = families::enhanced_cube(n, seed);
            let pred = paired(
                |l| predictions::enhanced_cube(1 << n, l),
                layers,
                ENHANCED_ENV,
            );
            (format!("enhanced:{n} seed={seed}"), fam, Some(pred))
        }
        "hsn" => {
            let (levels, r) = pick(rng, &[(2usize, 3usize), (2, 4), (2, 5), (3, 3)]);
            let fam = families::hsn(levels, r);
            let n_nodes = r.pow(levels as u32);
            let pred = paired(|l| predictions::hsn(n_nodes, l), layers, HSN_ENV);
            (format!("hsn:{levels},{r}"), fam, Some(pred))
        }
        "hhn" => {
            let (levels, s) = pick(rng, &[(2usize, 2usize), (2, 3)]);
            let fam = families::hhn(levels, s);
            let n_nodes = (1usize << s).pow(levels as u32);
            let pred = paired(|l| predictions::hsn(n_nodes, l), layers, HHN_ENV);
            (format!("hhn:{levels},{s}"), fam, Some(pred))
        }
        "isn" => {
            let (levels, r) = pick(rng, &[(2usize, 3usize), (2, 4)]);
            let fam = families::isn(levels, r);
            let n_nodes = fam.graph.node_count();
            let pred = paired(|l| predictions::isn(n_nodes, l), layers, ISN_ENV);
            (format!("isn:{levels},{r}"), fam, Some(pred))
        }
        "clusterc" => {
            let (k, n, c, kind) = pick(
                rng,
                &[
                    (3usize, 2usize, 4usize, ClusterKind::Hypercube),
                    (4, 2, 3, ClusterKind::Ring),
                    (3, 2, 3, ClusterKind::Complete),
                ],
            );
            let fam = families::kary_cluster(k, n, c, kind);
            (format!("clusterc:{k},{n},{c},{kind:?}"), fam, None)
        }
        "star" => {
            let n = pick(rng, &[3usize, 4]);
            let fam = families::star(n);
            (format!("star:{n}"), fam, None)
        }
        other => panic!("unknown conformance family '{other}'"),
    };
    Case {
        label: format!("{label} L={layers}"),
        layers,
        family,
        predicted,
    }
}

fn paired(
    predict: impl Fn(usize) -> Prediction,
    layers: usize,
    envelope: Envelope,
) -> CasePrediction {
    CasePrediction {
        at_thompson: predict(2),
        at_layers: predict(layers),
        envelope,
    }
}

// Envelopes calibrated against the full pool lattice at the Thompson
// point (the `tune_envelopes` sweep in `lib.rs`; re-measure after
// layout-engine changes). Bounds carry ≥ 25% slack beyond the observed
// extremes; a breach means the layout engine's constants moved. Large
// ratios (ISN, butterfly, CCC, HSN) are small-instance effects — the
// lower-order terms the leading constants drop still dominate at the
// pool's N — which is exactly why the envelope is per-family.
const HYPERCUBE_ENV: Envelope = Envelope {
    area: (2.0, 7.5),
    wire: Some((2.0, 8.0)),
};
const KARYN_ENV: Envelope = Envelope {
    area: (4.5, 10.0),
    wire: None,
};
const MESH_ENV: Envelope = Envelope {
    area: (12.0, 24.0),
    wire: None,
};
const GENHYPER_ENV: Envelope = Envelope {
    area: (2.2, 8.0),
    wire: Some((1.0, 3.5)),
};
const BUTTERFLY_ENV: Envelope = Envelope {
    area: (38.0, 90.0),
    wire: Some((5.0, 15.0)),
};
const CCC_ENV: Envelope = Envelope {
    area: (40.0, 92.0),
    wire: None,
};
const FOLDED_ENV: Envelope = Envelope {
    area: (2.1, 6.0),
    wire: Some((2.1, 5.6)),
};
const ENHANCED_ENV: Envelope = Envelope {
    area: (1.6, 8.0),
    wire: Some((1.3, 6.0)),
};
const HSN_ENV: Envelope = Envelope {
    area: (24.0, 82.0),
    wire: Some((5.0, 20.0)),
};
const HHN_ENV: Envelope = Envelope {
    area: (18.0, 48.0),
    wire: Some((8.5, 15.5)),
};
const ISN_ENV: Envelope = Envelope {
    area: (170.0, 420.0),
    wire: Some((22.0, 54.0)),
};
