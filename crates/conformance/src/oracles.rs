//! The conformance oracles, each returning human-readable violation
//! strings (empty = pass).
//!
//! 1. [`checker_oracle`] — the grid legality checker with the source
//!    graph as reference, on both the direct L-layer layout and the
//!    2-layer Thompson layout.
//! 2. [`differential_oracle`] — shared invariants between the direct
//!    L-layer scheme, the 2-layer Thompson layout, and the analytic
//!    folded-Thompson baseline: identical node and edge multisets,
//!    monotone area/max-wire in L, the `volume = L·area` identity, and
//!    the paper's model-ordering claims that are theorems of the
//!    constructions (folding gains ≤ L/2 area and never improves
//!    volume or max wire).
//! 3. [`prediction_oracle`] — measured area/volume/max-wire stay inside
//!    the leading-constant envelopes derived from `mlv-formulas`.
//! 4. [`tiled_oracle`] — the tiled IR differential: materializing the
//!    tiled realization is byte-identical to the flat layout, and the
//!    streaming checker/metrics walking the tile instances agree with
//!    the full-grid checker/metrics.
//! 5. [`pdk_oracle`] (run only with the PDK axis on) — the technology
//!    differential: the uniform PDK is the identity, the built-in
//!    `hv6` stack realizes legally under direction/pitch checks, and
//!    physical metrics obey the pitch-scaling laws.

use crate::cases::Case;
use mlv_grid::checker;
use mlv_grid::fold::FoldedEstimate;
use mlv_grid::layout::Layout;
use mlv_grid::metrics::{LayoutMetrics, PhysicalMetrics};
use mlv_grid::pdk::Pdk;
use mlv_topology::NodeId;
use std::collections::BTreeMap;

/// Oracle 1: full legality of both realizations against the graph.
pub fn checker_oracle(case: &Case, direct: &Layout, thompson: &Layout) -> Vec<String> {
    let mut v = Vec::new();
    for (which, layout) in [("direct", direct), ("thompson", thompson)] {
        let r = checker::check(layout, Some(&case.family.graph));
        if !r.is_legal() {
            v.push(format!(
                "[{}] {which} layout illegal: {:?}",
                case.label,
                &r.errors[..r.errors.len().min(2)]
            ));
        }
    }
    v
}

fn node_multiset(layout: &Layout) -> BTreeMap<NodeId, usize> {
    let mut m = BTreeMap::new();
    for n in &layout.nodes {
        *m.entry(n.node).or_insert(0) += 1;
    }
    m
}

/// Oracle 2: differential invariants between the direct scheme, the
/// Thompson layout, and the folded-Thompson baseline.
pub fn differential_oracle(
    case: &Case,
    direct: &Layout,
    dm: &LayoutMetrics,
    thompson: &Layout,
    tm: &LayoutMetrics,
) -> Vec<String> {
    let mut v = Vec::new();
    let graph = &case.family.graph;
    let l = case.label.as_str();

    // same node multiset: every graph node placed exactly once, in both
    let expected: BTreeMap<NodeId, usize> =
        (0..graph.node_count() as NodeId).map(|u| (u, 1)).collect();
    for (which, layout) in [("direct", direct), ("thompson", thompson)] {
        if node_multiset(layout) != expected {
            v.push(format!("[{l}] {which} node multiset != graph nodes"));
        }
    }

    // same edge multiset across direct, thompson, and the graph
    let edges = graph.edge_multiset();
    if direct.wire_multiset() != edges {
        v.push(format!("[{l}] direct edge multiset != graph"));
    }
    if thompson.wire_multiset() != edges {
        v.push(format!("[{l}] thompson edge multiset != graph"));
    }

    // the volume identity both sides of every comparison relies on
    if dm.volume != case.layers as u64 * dm.area {
        v.push(format!("[{l}] direct volume != L*area"));
    }
    if tm.volume != 2 * tm.area {
        v.push(format!("[{l}] thompson volume != 2*area"));
    }

    // monotone in L: more layers never cost area or max wire
    if dm.area > tm.area {
        v.push(format!(
            "[{l}] area not monotone: L={} area {} > 2-layer {}",
            case.layers, dm.area, tm.area
        ));
    }
    if dm.max_wire_planar > tm.max_wire_planar {
        v.push(format!(
            "[{l}] max wire not monotone: L={} wire {} > 2-layer {}",
            case.layers, dm.max_wire_planar, tm.max_wire_planar
        ));
    }

    // the folded-Thompson baseline (defined for even L >= 2): folding
    // gains at most t = L/2 area and never improves volume or max wire
    let even = case.layers & !1;
    if even >= 2 {
        let folded = FoldedEstimate::from_two_layer(tm, even);
        let t = (even / 2) as u64;
        if folded.area * t < tm.area {
            v.push(format!(
                "[{l}] folded baseline gained more than L/2 area: {} * {t} < {}",
                folded.area, tm.area
            ));
        }
        if folded.volume < tm.volume {
            v.push(format!(
                "[{l}] folded baseline reduced volume: {} < {}",
                folded.volume, tm.volume
            ));
        }
        if folded.max_wire < tm.max_wire_full {
            v.push(format!(
                "[{l}] folded baseline shortened max wire: {} < {}",
                folded.max_wire, tm.max_wire_full
            ));
        }
    }
    v
}

/// Oracle 3: leading-constant envelopes. The tight bounds apply at the
/// Thompson point (where the paper's constants are calibrated); at the
/// case's L the caps relax by exactly the model's saturation allowance
/// — `l2_eff(L)/4` for area (node footprints may absorb the entire
/// L²/4 gain at small N) and `L/2` for max wire — while the lower
/// envelope (measured never beats the leading term by more than the
/// family slack) stays in force.
pub fn prediction_oracle(case: &Case, dm: &LayoutMetrics, tm: &LayoutMetrics) -> Vec<String> {
    let Some(pred) = &case.predicted else {
        return Vec::new();
    };
    let mut v = Vec::new();
    let l = case.label.as_str();
    let env = pred.envelope;

    let check_ratio =
        |v: &mut Vec<String>, what: &str, measured: f64, predicted: f64, lo: f64, hi: f64| {
            if predicted <= 0.0 {
                return;
            }
            let r = measured / predicted;
            if r < lo || r > hi {
                v.push(format!(
                    "[{l}] {what} ratio {r:.4} outside envelope [{lo}, {hi}] \
                 (measured {measured}, leading term {predicted:.2})"
                ));
            }
        };

    // Thompson point: tight, calibrated bounds
    let (alo, ahi) = env.area;
    check_ratio(
        &mut v,
        "thompson area",
        tm.area as f64,
        pred.at_thompson.area,
        alo,
        ahi,
    );
    check_ratio(
        &mut v,
        "thompson volume",
        tm.volume as f64,
        pred.at_thompson.volume,
        alo,
        ahi,
    );
    if let (Some((wlo, whi)), Some(pw)) = (env.wire, pred.at_thompson.max_wire) {
        check_ratio(
            &mut v,
            "thompson max wire",
            tm.max_wire_planar as f64,
            pw,
            wlo,
            whi,
        );
    }

    // case's L: lower envelope unchanged, caps relaxed by saturation
    let saturation = pred.at_thompson.area / pred.at_layers.area; // = l2_eff(L)/4
    check_ratio(
        &mut v,
        "area",
        dm.area as f64,
        pred.at_layers.area,
        alo,
        ahi * saturation,
    );
    check_ratio(
        &mut v,
        "volume",
        dm.volume as f64,
        pred.at_layers.volume,
        alo,
        ahi * saturation,
    );
    if let (Some((wlo, whi)), Some(pw)) = (env.wire, pred.at_layers.max_wire) {
        let wire_saturation = case.layers as f64 / 2.0;
        check_ratio(
            &mut v,
            "max wire",
            dm.max_wire_planar as f64,
            pw,
            wlo,
            whi * wire_saturation,
        );
    }
    v
}

/// Oracle 4: tiled-vs-flat differential. Realizes the case's spec into
/// the tiled IR and pins three equivalences against the flat direct
/// realization the engine produced:
///
/// 1. `materialize(tiled)` is **byte-identical** to the flat layout
///    (same FNV digest over the canonical serialization);
/// 2. streaming metrics over the tile instances equal the full-grid
///    [`LayoutMetrics`];
/// 3. the streaming checker's report (errors, order, point totals)
///    equals the full-grid checker's.
pub fn tiled_oracle(case: &Case, direct: &mlv_layout::engine::JobOutcome) -> Vec<String> {
    let mut v = Vec::new();
    let l = case.label.as_str();
    let Some(dl) = &direct.layout else {
        return v;
    };
    let tiled = mlv_layout::realize_tiled(
        &case.family.spec,
        &mlv_layout::RealizeOptions::with_layers(case.layers),
    );
    let tiled_digest = mlv_layout::engine::layout_digest(&tiled.materialize());
    if tiled_digest != direct.digest {
        v.push(format!(
            "[{l}] tiled materialization digest {tiled_digest:#018x} != flat {:#018x}",
            direct.digest
        ));
    }
    let sm = mlv_grid::streaming::metrics_stream(&tiled);
    if sm != direct.metrics {
        v.push(format!(
            "[{l}] streaming metrics diverge: tiled {sm:?} vs flat {:?}",
            direct.metrics
        ));
    }
    let full = checker::check(dl, Some(&case.family.graph));
    let stream = mlv_grid::streaming::check_stream(&tiled, Some(&case.family.graph));
    if stream.errors != full.errors {
        v.push(format!(
            "[{l}] streaming checker errors diverge: {} streaming vs {} full (first: {:?} vs {:?})",
            stream.errors.len(),
            full.errors.len(),
            stream.errors.first(),
            full.errors.first(),
        ));
    }
    if (stream.wire_points, stream.node_points) != (full.wire_points, full.node_points) {
        v.push(format!(
            "[{l}] streaming point totals diverge: wires {} vs {}, nodes {} vs {}",
            stream.wire_points, full.wire_points, stream.node_points, full.node_points
        ));
    }
    v
}

/// Oracle 5: technology differential, pinning four laws of the PDK
/// threading against the engine's (PDK-free) direct realization:
///
/// 1. **uniform identity** — a *fresh* realization under an explicit
///    [`Pdk::uniform`] stack (no memo cache involved) is byte-identical
///    to the PDK-free layout;
/// 2. [`PhysicalMetrics`] under the uniform stack reduce exactly to the
///    grid [`LayoutMetrics`];
/// 3. the built-in `hv6` stack realizes legally under the full
///    direction/pitch checker ([`checker::check_with_pdk`]);
/// 4. pitch scaling is exactly linear: tripling every pitch/via cost
///    triples wirelength and via cost and multiplies area by 9.
pub fn pdk_oracle(case: &Case, direct: &mlv_layout::engine::JobOutcome) -> Vec<String> {
    let mut v = Vec::new();
    let l = case.label.as_str();
    let Some(dl) = &direct.layout else {
        return v;
    };

    // 1. uniform identity, realized fresh so a memo-cache hit cannot
    // make the comparison vacuous
    let uniform = Pdk::uniform(case.layers);
    let ul = mlv_layout::realize_fresh(
        &case.family.spec,
        &mlv_layout::RealizeOptions::with_pdk(case.layers, uniform.clone()),
    );
    let udigest = mlv_layout::engine::layout_digest(&ul);
    if udigest != direct.digest {
        v.push(format!(
            "[{l}] uniform-PDK realization digest {udigest:#018x} != PDK-free {:#018x}",
            direct.digest
        ));
    }

    // 2. physical metrics reduce to grid metrics on the uniform stack
    match PhysicalMetrics::of(dl, &uniform) {
        Err(e) => v.push(format!("[{l}] uniform physical metrics failed: {e}")),
        Ok(ph) => {
            let m = &direct.metrics;
            if ph.wirelength != m.total_wire
                || ph.max_wire != m.max_wire_full
                || ph.via_cost != m.via_count
                || ph.area != m.area
            {
                v.push(format!(
                    "[{l}] uniform physical metrics not the identity: {ph:?} vs {m:?}"
                ));
            }
        }
    }

    // 3. hv6 realizes legally under direction/pitch checks
    let hv6 = Pdk::hv6();
    let hl = mlv_layout::realize_fresh(
        &case.family.spec,
        &mlv_layout::RealizeOptions::with_pdk(case.layers, hv6.clone()),
    );
    let report = checker::check_with_pdk(&hl, Some(&case.family.graph), &hv6);
    if !report.is_legal() {
        v.push(format!(
            "[{l}] hv6 realization illegal: {:?}",
            &report.errors[..report.errors.len().min(2)]
        ));
    }

    // 4. exact linearity under pitch scaling
    let scaled = hv6.scaled(3).expect("hv6 x3 cannot overflow");
    match (
        PhysicalMetrics::of(&hl, &hv6),
        PhysicalMetrics::of(&hl, &scaled),
    ) {
        (Ok(p1), Ok(p3)) => {
            if p3.wirelength != 3 * p1.wirelength
                || p3.via_cost != 3 * p1.via_cost
                || p3.area != 9 * p1.area
            {
                v.push(format!(
                    "[{l}] pitch scaling not linear: x3 gave {p3:?} from {p1:?}"
                ));
            }
        }
        (r1, r3) => v.push(format!(
            "[{l}] hv6 physical metrics failed: {r1:?} / {r3:?}"
        )),
    }
    v
}
