//! Scenario: choosing the interconnect for a hierarchical parallel
//! machine — clusters of processors on a board, boards wired as a
//! second-level network (the architecture §4.3's swap networks and
//! §3.2's PN clusters were proposed for).
//!
//! We lay out four candidate 512-node-class interconnects on the same
//! 8-layer process and compare silicon cost (area), packaging cost
//! (volume) and critical-path wire length, then show how the cluster
//! size knob moves the numbers for the k-ary n-cube cluster-c.
//!
//! ```text
//! cargo run --example hierarchical_machine
//! ```

use mlv_grid::metrics::LayoutMetrics;
use mlv_layout::families::{self, Family};
use mlv_topology::cluster::ClusterKind;
use mlv_topology::properties::GraphProperties;

fn profile(label: &str, fam: &Family, layers: usize) {
    let layout = fam.realize(layers);
    // spot-verify the smaller instances end-to-end
    if fam.graph.node_count() <= 600 {
        mlv_grid::checker::assert_legal(&layout, Some(&fam.graph));
    }
    let m = LayoutMetrics::of(&layout);
    let degree = fam.graph.max_degree();
    let diameter = fam
        .graph
        .diameter()
        .map(|d| d.to_string())
        .unwrap_or_else(|| "-".into());
    println!(
        " {label:<22} | {:>5} | {:>3} | {:>8} | {:>9} | {:>8} | {:>8}",
        fam.graph.node_count(),
        degree,
        diameter,
        m.area,
        m.volume,
        m.max_wire_planar
    );
}

fn main() {
    let layers = 8;
    println!("candidate interconnects on an {layers}-layer process:\n");
    println!(
        " {:<22} | {:>5} | {:>3} | {:>8} | {:>9} | {:>8} | {:>8}",
        "network", "nodes", "deg", "diameter", "area", "volume", "max wire"
    );
    println!(" {}", "-".repeat(84));
    profile("9-cube", &families::hypercube(9), layers);
    profile("8-ary 3-cube", &families::karyn_cube(8, 3, false), layers);
    profile("CCC(6)", &families::ccc(6), layers);
    profile("HSN(3, K8)", &families::hsn(3, 8), layers);
    profile("HHN(3, 3)", &families::hhn(3, 3), layers);
    profile("GHC 8x8x8", &families::genhyper(&[8, 8, 8]), layers);

    println!(
        "\nthe constant-degree CCC buys cheap routers at ~the hypercube's area;\n\
         the swap networks sit between the torus and the dense GHC.\n"
    );

    // cluster-size knob on a 8-ary 2-cube backbone
    println!("cluster-size knob: 8-ary 2-cube backbone with c-processor boards (L = {layers}):\n");
    println!(
        " {:<22} | {:>5} | {:>8} | {:>9} | {:>8}",
        "configuration", "nodes", "area", "volume", "max wire"
    );
    println!(" {}", "-".repeat(64));
    for (c, kind, label) in [
        (2usize, ClusterKind::Ring, "c=2 ring boards"),
        (4, ClusterKind::Ring, "c=4 ring boards"),
        (4, ClusterKind::Hypercube, "c=4 cube boards"),
        (8, ClusterKind::Hypercube, "c=8 cube boards"),
        (8, ClusterKind::Complete, "c=8 crossbar boards"),
    ] {
        let fam = families::kary_cluster(8, 2, c, kind);
        let layout = fam.realize(layers);
        let m = LayoutMetrics::of(&layout);
        println!(
            " {label:<22} | {:>5} | {:>8} | {:>9} | {:>8}",
            fam.graph.node_count(),
            m.area,
            m.volume,
            m.max_wire_planar
        );
    }
    println!("\ndenser boards cost area superlinearly — exactly §3.2's c = o(k^(n/2-1)) warning.");
}
