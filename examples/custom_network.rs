//! Scenario: laying out *your own* topology — the adoption path for a
//! network that isn't one of the built-in families.
//!
//! We define a small accelerator fabric by hand: a 4×4 mesh of compute
//! tiles with an extra "express ring" over the diagonal tiles and a
//! memory hub attached to the corners. Then: place it on a grid, let
//! the generic recursive-grid scheme classify and colour the wires,
//! realize at several layer counts, verify, and export an SVG.
//!
//! ```text
//! cargo run --release --example custom_network
//! ```

use mlv_grid::checker;
use mlv_grid::metrics::LayoutMetrics;
use mlv_grid::svg::{render_svg, SvgOptions};
use mlv_layout::realize::{realize, RealizeOptions};
use mlv_layout::scheme::grid_spec;
use mlv_topology::GraphBuilder;

fn main() {
    // ---- 1. define the topology --------------------------------------
    // nodes 0..16: 4x4 mesh of tiles; node 16: memory hub;
    // nodes 17..20: spare tiles (unconnected — they fill the grid and
    // leave room to grow, as real floorplans do)
    let mut b = GraphBuilder::new("accelerator fabric", 20);
    let tile = |r: usize, c: usize| (r * 4 + c) as u32;
    for r in 0..4 {
        for c in 0..4 {
            if c + 1 < 4 {
                b.add_edge(tile(r, c), tile(r, c + 1));
            }
            if r + 1 < 4 {
                b.add_edge(tile(r, c), tile(r + 1, c));
            }
        }
    }
    // express ring over the diagonal
    for i in 0..4 {
        b.add_edge(tile(i, i), tile((i + 1) % 4, (i + 1) % 4));
    }
    // memory hub to the four corners
    for (r, c) in [(0, 0), (0, 3), (3, 0), (3, 3)] {
        b.add_edge(16, tile(r, c));
    }
    let g = b.build();
    println!(
        "fabric: {} nodes, {} links, max degree {}",
        g.node_count(),
        g.edge_count(),
        g.max_degree()
    );

    // ---- 2. place it on a grid ----------------------------------------
    // tiles keep their mesh positions; the hub gets its own row
    let spec = grid_spec("fabric", &g, 5, 4, |u| {
        if u >= 16 {
            (4, (u as usize) - 16) // hub + spares on the top row
        } else {
            ((u as usize) / 4, (u as usize) % 4)
        }
    });
    println!(
        "spec: {} row wires, {} col wires, {} jogs",
        spec.row_wires.len(),
        spec.col_wires.len(),
        spec.jog_wires.len()
    );

    // ---- 3. realize, verify, measure across layer budgets -------------
    println!("\n  L |  area | max wire | vias");
    for layers in [2usize, 4, 6] {
        let layout = realize(&spec, &RealizeOptions::with_layers(layers));
        checker::assert_legal(&layout, Some(&g)); // full model verification
        let m = LayoutMetrics::of(&layout);
        println!(
            " {layers:>2} | {:>5} | {:>8} | {:>4}",
            m.area, m.max_wire_planar, m.via_count
        );
    }

    // ---- 4. export an SVG of the 4-layer version -----------------------
    let layout = realize(&spec, &RealizeOptions::with_layers(4));
    let svg = render_svg(&layout, &SvgOptions::default());
    let path = std::env::temp_dir().join("fabric.svg");
    std::fs::write(&path, svg).expect("write svg");
    println!("\nwrote {}", path.display());
}
