//! Regenerate the paper's figures (1–4) from the implemented
//! constructions, plus a realized multilayer layout rendered per layer.
//!
//! ```text
//! cargo run --example figure_gallery          # everything
//! cargo run --example figure_gallery -- f3    # one figure
//! ```

use mlv_collinear::complete::complete_collinear;
use mlv_collinear::folded::fold_outer_groups;
use mlv_collinear::hypercube::hypercube_collinear;
use mlv_collinear::karyn::kary_collinear;
use mlv_collinear::render::render_tracks;
use mlv_grid::render::{render_block_grid, render_layer, render_top};
use mlv_layout::families;
use mlv_layout::scheme::figure1_labels;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    let all = arg.is_empty();

    if all || arg == "f1" {
        println!("=== Figure 1: recursive grid layout scheme (level-l blocks) ===\n");
        println!("{}", render_block_grid(&figure1_labels(3, 4), 7, 3));
    }
    if all || arg == "f2" {
        let l = kary_collinear(3, 2);
        println!(
            "=== Figure 2: collinear 3-ary 2-cube — {} tracks ===\n",
            l.tracks()
        );
        println!("{}", render_tracks(&l, None));
    }
    if all || arg == "f3" {
        let l = complete_collinear(9);
        println!(
            "=== Figure 3: collinear K9 — {} tracks (strictly optimal) ===\n",
            l.tracks()
        );
        println!("{}", render_tracks(&l, None));
    }
    if all || arg == "f4" {
        let l = hypercube_collinear(4);
        println!(
            "=== Figure 4: collinear 4-cube — {} tracks ===\n",
            l.tracks()
        );
        println!("{}", render_tracks(&l, None));
    }
    if all || arg == "folded" {
        let base = kary_collinear(8, 1);
        let folded = fold_outer_groups(&base, 8);
        println!("=== Bonus: folding an 8-ring (§3.1) — wrap link shrinks ===\n");
        println!(
            "plain order (max span {}):\n{}",
            base.max_span(),
            render_tracks(&base, None)
        );
        println!(
            "folded order (max span {}):\n{}",
            folded.max_span(),
            render_tracks(&folded, None)
        );
    }
    if all || arg == "layout" {
        let fam = families::hypercube(3);
        let layout = fam.realize(4);
        println!("=== Bonus: realized 3-cube at L=4 ===\n");
        println!("top view:\n{}", render_top(&layout));
        for z in 0..4 {
            println!("layer z={z}:\n{}", render_layer(&layout, z));
        }
    }
}
