//! Quickstart: lay out a hypercube on a multilayer grid, verify it, and
//! inspect the numbers.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mlv_grid::checker;
use mlv_grid::metrics::LayoutMetrics;
use mlv_grid::render::render_top;
use mlv_layout::families;

fn main() {
    // 1. Pick a network family: the 6-dimensional hypercube (64 nodes).
    let family = families::hypercube(6);
    println!(
        "network: {} ({} nodes, {} links)",
        family.graph.name(),
        family.graph.node_count(),
        family.graph.edge_count()
    );

    // 2. Realize it on a multilayer grid. L = 2 is the classical
    //    Thompson layout; more layers shrink the layout quadratically.
    for layers in [2usize, 4, 8] {
        let layout = family.realize(layers);

        // 3. Verify legality: node-disjoint wires, terminals on
        //    footprints, layer budget respected, and the wire multiset
        //    equal to the network's edge multiset.
        let report = checker::check(&layout, Some(&family.graph));
        assert!(report.is_legal(), "illegal layout: {:?}", report.errors);

        // 4. Read off the paper's figures of merit.
        let m = LayoutMetrics::of(&layout);
        println!(
            "L={layers}: area {:>6} ({:>3} x {:>3}), volume {:>7}, max wire {:>3}, vias {:>5}",
            m.area, m.width, m.height, m.volume, m.max_wire_planar, m.via_count
        );
    }

    // 5. Small layouts render as ASCII for inspection.
    let tiny = families::hypercube(3).realize(4);
    println!("\n3-cube at L=4, top view ('#' nodes, 'o' vias):\n");
    println!("{}", render_top(&tiny));
}
