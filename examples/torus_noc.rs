//! Scenario: a 64-core network-on-chip as an 8-ary 2-cube torus.
//!
//! A chip designer gets more metal layers with every process node; this
//! example answers "what does each extra pair of layers buy my NoC?"
//! exactly the way the paper does — by redesigning the layout for L
//! layers instead of folding the 2-layer layout — and shows the effect
//! of folding the node order on the longest (= slowest) wire.
//!
//! ```text
//! cargo run --example torus_noc
//! ```

use mlv_grid::checker;
use mlv_grid::fold::FoldedEstimate;
use mlv_grid::metrics::LayoutMetrics;
use mlv_layout::families;
use mlv_layout::realize::align_wires;

fn main() {
    let torus = families::karyn_cube(8, 2, false);
    println!(
        "NoC topology: {} — {} routers, {} links\n",
        torus.graph.name(),
        torus.graph.node_count(),
        torus.graph.edge_count()
    );

    // Thompson baseline (2 layers) and its folded variants.
    let thompson = {
        let l = torus.realize(2);
        checker::assert_legal(&l, Some(&torus.graph));
        LayoutMetrics::of(&l)
    };
    println!("redesigned for L layers vs folding the 2-layer layout:");
    println!("  L | area (direct) | area (folded) | max wire (direct) | max wire (folded)");
    for layers in [2usize, 4, 8, 16] {
        let direct = {
            let l = torus.realize(layers);
            checker::assert_legal(&l, Some(&torus.graph));
            LayoutMetrics::of(&l)
        };
        let folded = FoldedEstimate::from_two_layer(&thompson, layers);
        println!(
            " {layers:>2} | {:>13} | {:>13} | {:>17} | {:>17}",
            direct.area, folded.area, direct.max_wire_planar, folded.max_wire
        );
    }
    println!(
        "(the folded estimate keeps shrinking because folding stacks the *routers*\n\
         onto extra active layers — the multilayer 3-D grid model; the direct layout\n\
         keeps all routers on one active layer, so its area floors at the router\n\
         footprints once this sparse NoC's two tracks per bundle are absorbed.\n\
         Note the folded max wire only grows.)"
    );

    // Folded node order: the wraparound links stop spanning the die.
    println!("\nfolded node order (paper §3.1) against the plain order, at L = 4:");
    let plain = torus.realize(4);
    let folded_fam = families::karyn_cube(8, 2, true);
    let folded = folded_fam.realize(4);
    checker::assert_legal(&folded, Some(&folded_fam.graph));
    let (mp, mf) = (LayoutMetrics::of(&plain), LayoutMetrics::of(&folded));
    println!(
        "  plain : area {:>6}, max wire {:>4}",
        mp.area, mp.max_wire_planar
    );
    println!(
        "  folded: area {:>6}, max wire {:>4}  (x{:.1} shorter critical wire)",
        mf.area,
        mf.max_wire_planar,
        mp.max_wire_planar as f64 / mf.max_wire_planar as f64
    );

    // Worst-case source-destination wire budget (claim 4 of the paper):
    // the total wire a packet traverses on a shortest route.
    println!("\nworst-case routed wire length (all-pairs shortest routes):");
    for layers in [2usize, 8] {
        let mut l = torus.realize(layers);
        align_wires(&mut l, &torus.graph);
        let routed = LayoutMetrics::max_routed_path(&l, &torus.graph).unwrap();
        println!("  L={layers:>2}: {routed}");
    }
}
