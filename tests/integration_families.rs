//! Integration: every family the paper lays out builds a legal,
//! checker-verified multilayer layout at several layer counts, and the
//! layout realizes exactly the reference topology.

use mlv_grid::checker;
use mlv_grid::metrics::LayoutMetrics;
use mlv_layout::families::{self, Family};
use mlv_topology::cluster::ClusterKind;

fn full_check(name: &str, fam: &Family, layer_sweep: &[usize]) {
    assert_eq!(
        fam.spec.edge_multiset(),
        fam.graph.edge_multiset(),
        "{name}: spec does not realize the reference graph"
    );
    let mut prev_area = u64::MAX;
    for &layers in layer_sweep {
        let layout = fam.realize(layers);
        checker::assert_legal(&layout, Some(&fam.graph));
        let m = LayoutMetrics::of(&layout);
        assert!(m.area > 0, "{name}: empty layout");
        assert!(
            m.max_used_layer < layers as i32,
            "{name}: layer budget exceeded"
        );
        assert_eq!(m.volume, layers as u64 * m.area, "{name}: volume != L*area");
        assert!(
            m.area <= prev_area,
            "{name}: area must not grow with more layers ({} -> {})",
            prev_area,
            m.area
        );
        prev_area = m.area;
        assert_eq!(m.wire_count, fam.graph.edge_count());
    }
}

#[test]
fn karyn_cubes() {
    full_check(
        "3-ary 2-cube",
        &families::karyn_cube(3, 2, false),
        &[2, 4, 8],
    );
    full_check(
        "4-ary 3-cube",
        &families::karyn_cube(4, 3, false),
        &[2, 4, 8],
    );
    full_check("8-ary 2-cube", &families::karyn_cube(8, 2, false), &[2, 4]);
    full_check("5-ary 1-cube", &families::karyn_cube(5, 1, false), &[2, 4]);
    full_check(
        "6-ary 2-cube folded",
        &families::karyn_cube(6, 2, true),
        &[2, 4],
    );
}

#[test]
fn hypercubes() {
    for n in 1..=8usize {
        full_check(&format!("{n}-cube"), &families::hypercube(n), &[2, 4, 6, 8]);
    }
}

#[test]
fn generalized_hypercubes() {
    full_check("GHC 8x8", &families::genhyper(&[8, 8]), &[2, 4, 8]);
    full_check("GHC 4x4x4", &families::genhyper(&[4, 4, 4]), &[2, 4]);
    full_check("GHC mixed", &families::genhyper(&[3, 5, 2]), &[2, 4]);
    full_check("K9 (1-dim)", &families::genhyper(&[9]), &[2, 4]);
}

#[test]
fn hypercube_variants() {
    full_check("folded 5-cube", &families::folded_hypercube(5), &[2, 4, 8]);
    full_check("folded 7-cube", &families::folded_hypercube(7), &[2, 4]);
    full_check("enhanced 5-cube", &families::enhanced_cube(5, 7), &[2, 4]);
    full_check("enhanced 6-cube", &families::enhanced_cube(6, 99), &[2, 4]);
}

#[test]
fn pn_cluster_families() {
    full_check("CCC(3)", &families::ccc(3), &[2, 4, 8]);
    full_check("CCC(5)", &families::ccc(5), &[2, 4]);
    full_check("RH(4)", &families::reduced_hypercube(4), &[2, 4]);
    full_check("BF(4)", &families::butterfly(4), &[2, 4, 8]);
    full_check("BF(5) r=2", &families::butterfly_clustered(5, 1), &[2, 4]);
    full_check(
        "4-ary 2-cube cluster-4",
        &families::kary_cluster(4, 2, 4, ClusterKind::Hypercube),
        &[2, 4],
    );
    full_check(
        "3-ary 2-cube cluster-5 complete",
        &families::kary_cluster(3, 2, 5, ClusterKind::Complete),
        &[2, 4],
    );
}

#[test]
fn swap_networks() {
    full_check("HSN(2,K6)", &families::hsn(2, 6), &[2, 4, 8]);
    full_check("HSN(3,K4)", &families::hsn(3, 4), &[2, 4]);
    full_check("HHN(2,2)", &families::hhn(2, 2), &[2, 4]);
    full_check("HHN(3,2)", &families::hhn(3, 2), &[2, 4]);
    full_check("ISN(2,5)", &families::isn(2, 5), &[2, 4]);
    full_check("ISN(3,3)", &families::isn(3, 3), &[2, 4]);
}

#[test]
fn cayley_families() {
    full_check("star(4)", &families::star(4), &[2, 4]);
    full_check("pancake(4)", &families::pancake(4), &[2, 4]);
    full_check("bubble-sort(4)", &families::bubble_sort(4), &[2]);
    full_check("transposition(4)", &families::transposition(4), &[2]);
    full_check("SCC(4)", &families::scc(4), &[2, 4]);
    full_check("star(5)", &families::star(5), &[2]);
}
