//! Integration: the multilayer 3-D grid model realizer against the 2-D
//! scheme, across families, plus save/load round trips of full layouts.

use mlv_bench::measure;
use mlv_grid::checker;
use mlv_grid::io::{read_layout, write_layout};
use mlv_grid::metrics::LayoutMetrics;
use mlv_layout::families;
use mlv_layout::realize3d::{realize_3d, Realize3dOptions};

fn metrics_3d(
    fam: &families::Family,
    layers: usize,
    la: usize,
    side: Option<usize>,
) -> LayoutMetrics {
    let layout = realize_3d(
        &fam.spec,
        &Realize3dOptions {
            layers,
            active_layers: la,
            node_side: side,
            pdk: None,
        },
    );
    checker::assert_legal(&layout, Some(&fam.graph));
    LayoutMetrics::of(&layout)
}

/// Every family class stacks legally.
#[test]
fn families_stack_legally() {
    for (fam, la) in [
        (families::karyn_cube(4, 2, false), 2usize),
        (families::karyn_mesh(4, 2), 2),
        (families::hypercube(4), 2),
        (families::genhyper(&[4, 4]), 2),
        (families::ccc(3), 2),
        (families::hsn(2, 4), 2),
        (families::butterfly(3), 2),
        (families::folded_hypercube(4), 2),
        (families::karyn_cube(8, 2, false), 4),
    ] {
        let _ = metrics_3d(&fam, 4 * la.max(2), la, None);
    }
}

/// The 3-D gain with processor-scale nodes grows with L_A on tori, and
/// the torus beats the hypercube at equal budgets (riser counts).
#[test]
fn stacking_gains_ordering() {
    let torus = families::karyn_cube(8, 2, false);
    let cube = families::hypercube(6);
    let t1 = metrics_3d(&torus, 8, 1, Some(16)).area as f64;
    let t4 = metrics_3d(&torus, 8, 4, Some(16)).area as f64;
    let c1 = metrics_3d(&cube, 8, 1, Some(16)).area as f64;
    let c4 = metrics_3d(&cube, 8, 4, Some(16)).area as f64;
    let torus_gain = t1 / t4;
    let cube_gain = c1 / c4;
    assert!(torus_gain > 2.5, "torus gain {torus_gain}");
    assert!(
        torus_gain > cube_gain,
        "torus {torus_gain} <= cube {cube_gain}"
    );
}

/// Volume never improves from stacking alone at minimal node sizes
/// (wiring is conserved; the paper's volume claim is about the 2-D
/// scheme's track split, not about active layers).
#[test]
fn stacking_conserves_wiring() {
    let fam = families::karyn_cube(6, 2, false);
    let m1 = metrics_3d(&fam, 8, 1, None);
    let m2 = metrics_3d(&fam, 8, 2, None);
    // total wire length should be in the same ballpark (risers add a
    // little)
    let ratio = m2.total_wire as f64 / m1.total_wire as f64;
    assert!(ratio < 1.6, "wire blew up: {ratio}");
}

/// A realized 3-D layout survives the save/load round trip and
/// re-checks clean, including the stacked node layers.
#[test]
fn three_d_layout_round_trips() {
    let fam = families::karyn_cube(4, 2, false);
    let layout = realize_3d(
        &fam.spec,
        &Realize3dOptions {
            layers: 8,
            active_layers: 2,
            node_side: None,
            pdk: None,
        },
    );
    checker::assert_legal(&layout, Some(&fam.graph));
    let text = write_layout(&layout);
    let back = read_layout(&text).expect("parse back");
    checker::assert_legal(&back, Some(&fam.graph));
    assert_eq!(write_layout(&back), text);
    // stacked placements survived
    assert!(back.nodes.iter().any(|n| n.layer > 0));
}

/// 2-D layouts saved by the harness also round trip (the io path is
/// model-agnostic).
#[test]
fn two_d_layout_round_trips() {
    let fam = families::hypercube(5);
    let m = measure(&fam, 4, false);
    assert!(m.metrics.area > 0);
    let layout = fam.realize(4);
    let back = read_layout(&write_layout(&layout)).unwrap();
    checker::assert_legal(&back, Some(&fam.graph));
    assert_eq!(
        LayoutMetrics::of(&back).area,
        LayoutMetrics::of(&layout).area
    );
}
