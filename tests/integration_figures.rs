//! Integration: the paper's four figures regenerate from the actual
//! constructions with the exact advertised shapes.

use mlv_collinear::complete::complete_collinear;
use mlv_collinear::hypercube::hypercube_collinear;
use mlv_collinear::karyn::kary_collinear;
use mlv_collinear::render::render_tracks;
use mlv_grid::render::{render_block_grid, render_layer, render_top};
use mlv_layout::families;
use mlv_layout::scheme::figure1_labels;

/// Figure 1: the recursive-grid block arrangement renders as a grid of
/// labelled boxes.
#[test]
fn figure1_block_grid() {
    let s = render_block_grid(&figure1_labels(3, 4), 7, 3);
    for r in 0..3 {
        for c in 0..4 {
            assert!(s.contains(&format!("B{r}{c}")), "missing block B{r}{c}");
        }
    }
    // row 2 is drawn above row 0 (top view)
    assert!(s.find("B20").unwrap() < s.find("B00").unwrap());
}

/// Figure 2: the collinear 3-ary 2-cube uses exactly 8 tracks
/// (f₃(2) = 2(9−1)/2) and realizes the torus.
#[test]
fn figure2_three_ary_two_cube() {
    let l = kary_collinear(3, 2);
    l.assert_valid();
    assert_eq!(l.tracks(), 8);
    assert_eq!(l.slot_count(), 9);
    let s = render_tracks(&l, None);
    assert_eq!(s.lines().count(), 9); // 8 track rows + node row
    assert_eq!(
        l.edge_multiset(),
        mlv_topology::karyn::KaryNCube::torus(3, 2)
            .graph
            .edge_multiset()
    );
}

/// Figure 3: the collinear K₉ uses exactly ⌊81/4⌋ = 20 tracks, which
/// equals the interval-load lower bound (strict optimality).
#[test]
fn figure3_nine_node_complete() {
    let l = complete_collinear(9);
    l.assert_valid();
    assert_eq!(l.tracks(), 20);
    assert_eq!(l.max_load(), 20);
    let s = render_tracks(&l, None);
    assert_eq!(s.lines().count(), 21);
}

/// Figure 4: the collinear 4-cube uses exactly ⌊2·16/3⌋ = 10 tracks
/// with the low bits in Gray order.
#[test]
fn figure4_four_cube() {
    let l = hypercube_collinear(4);
    l.assert_valid();
    assert_eq!(l.tracks(), 10);
    // each group of four slots is a 2-cube over the two high dimensions
    // in Gray order (0,1,3,2 scaled by 4)...
    assert_eq!(&l.node_at_slot[0..4], &[0, 4, 12, 8]);
    // ...and across groups the low dimensions are Gray ordered too
    assert_eq!(l.node_at_slot[0], 0);
    assert_eq!(l.node_at_slot[4], 1);
    assert_eq!(l.node_at_slot[8], 3);
    assert_eq!(l.node_at_slot[12], 2);
    let s = render_tracks(&l, None);
    assert_eq!(s.lines().count(), 11);
}

/// The grid renderer round-trips a realized layout: nodes appear, wires
/// appear, and per-layer views decompose the top view.
#[test]
fn realized_layout_renders() {
    let fam = families::hypercube(3);
    let layout = fam.realize(4);
    let top = render_top(&layout);
    assert_eq!(top.matches('#').count(), 8 * 9); // 8 nodes of side 3
    let mut any_wire = false;
    for z in 0..4 {
        let s = render_layer(&layout, z);
        any_wire |= s.contains('-') || s.contains('|');
    }
    assert!(any_wire);
}

/// Figure renders are deterministic (byte-identical across runs).
#[test]
fn figures_are_deterministic() {
    let a = render_tracks(&kary_collinear(3, 2), None);
    let b = render_tracks(&kary_collinear(3, 2), None);
    assert_eq!(a, b);
    let c = render_top(&families::hypercube(3).realize(2));
    let d = render_top(&families::hypercube(3).realize(2));
    assert_eq!(c, d);
}
