//! Integration: the paper's headline quantitative claims (§1 claims
//! 1–4, §2.2), asserted as shape properties of measured layouts.

use mlv_bench::{measure, measure_unchecked};
use mlv_formulas::predictions;
use mlv_layout::baseline::compare_models;
use mlv_layout::families;

/// Claim 1: redesigning for L layers beats folding a Thompson layout —
/// on track-dominated instances the direct area gain exceeds the folded
/// gain for every L > 2.
#[test]
fn direct_redesign_beats_folding() {
    let spec = families::genhyper(&[16, 16]).spec;
    for layers in [4usize, 8, 16] {
        let cmp = compare_models(&spec, layers);
        assert!(
            cmp.direct_area_gain() > cmp.folded_area_gain(),
            "L={layers}: direct {} <= folded {}",
            cmp.direct_area_gain(),
            cmp.folded_area_gain()
        );
    }
}

/// Claim 2: the direct redesign reduces volume; folding does not.
#[test]
fn volume_gains() {
    let spec = families::genhyper(&[16, 16]).spec;
    let cmp = compare_models(&spec, 8);
    assert!(cmp.direct_volume_gain() > 1.3);
    assert!(cmp.folded_volume_gain() <= 1.0 + 1e-9);
}

/// Claim 3: the direct redesign shortens the longest wire by a growing
/// factor; folding leaves it unchanged.
#[test]
fn wire_gains() {
    let spec = families::genhyper(&[16, 16]).spec;
    let cmp4 = compare_models(&spec, 4);
    let cmp8 = compare_models(&spec, 8);
    assert!(cmp4.direct_wire_gain() > 1.2);
    assert!(cmp8.direct_wire_gain() > cmp4.direct_wire_gain());
    assert!(cmp8.folded_wire_gain() <= 1.0 + 1e-9);
}

/// Claim 4: the routed-path metric improves with L like the wire
/// lengths do (GHC: paper predicts rN/L).
#[test]
fn routed_path_scales_with_layers() {
    let fam = families::genhyper(&[10, 10]);
    let r2 = measure(&fam, 2, true).routed.unwrap();
    let r8 = measure(&fam, 8, true).routed.unwrap();
    assert!(
        r2 as f64 / r8 as f64 > 2.0,
        "routed path gain only {}",
        r2 as f64 / r8 as f64
    );
}

/// The measured/predicted area ratio improves (falls toward 1) with N
/// for the product families — the o(1) terms die out.
#[test]
fn prediction_ratios_improve_with_n() {
    let mut prev = f64::MAX;
    for n in [6usize, 8, 10] {
        let fam = families::hypercube(n);
        let m = measure_unchecked(&fam, 2);
        let p = predictions::hypercube(1 << n, 2);
        let ratio = m.metrics.area as f64 / p.area;
        assert!(ratio < prev, "hypercube ratio not improving at n={n}");
        assert!(ratio >= 1.0, "measured beat the leading term at n={n}?");
        prev = ratio;
    }
    let mut prev = f64::MAX;
    for r in [8usize, 12, 16, 24] {
        let fam = families::genhyper(&[r, r]);
        let m = measure_unchecked(&fam, 2);
        let p = predictions::genhyper(r, 2, 2);
        let ratio = m.metrics.area as f64 / p.area;
        assert!(ratio < prev, "GHC ratio not improving at r={r}");
        prev = ratio;
    }
}

/// GHC at large r: measured area within 2x of the paper's leading term
/// at the 2-layer (Thompson) point, and max wire within 25%.
#[test]
fn ghc_close_to_paper_constants() {
    let fam = families::genhyper(&[24, 24]);
    let m = measure_unchecked(&fam, 2);
    let p = predictions::genhyper(24, 2, 2);
    let a_ratio = m.metrics.area as f64 / p.area;
    assert!(a_ratio < 2.0, "area ratio {a_ratio}");
    let w_ratio = m.metrics.max_wire_planar as f64 / p.max_wire.unwrap();
    assert!(w_ratio < 1.25, "wire ratio {w_ratio}");
}

/// Odd layer counts behave exactly like the next-lower even count
/// (⌊L/2⌋ groups; the paper's L²−1 denominators).
#[test]
fn odd_layers_match_next_even() {
    for (fam, name) in [
        (families::hypercube(6), "6-cube"),
        (families::karyn_cube(4, 3, false), "4-ary 3-cube"),
    ] {
        for odd in [3usize, 5, 7] {
            let mo = measure(&fam, odd, false);
            let me = measure(&fam, odd - 1, false);
            assert_eq!(
                mo.metrics.area,
                me.metrics.area,
                "{name}: area at L={odd} differs from L={}",
                odd - 1
            );
        }
    }
}

/// Area scales like 1/L² once wiring dominates: on K24xK24 the L=2 to
/// L=8 gain matches the exact pitch model ((s+T)/(s+⌈T/4⌉))² — tracks
/// shrink by the full factor ⌊L/2⌋, footprints account for the rest.
#[test]
fn quadratic_area_scaling_on_dense_network() {
    let fam = families::genhyper(&[24, 24]);
    let a2 = measure_unchecked(&fam, 2).metrics.area as f64;
    let a8 = measure_unchecked(&fam, 8).metrics.area as f64;
    let gain = a2 / a8;
    let (s, t) = (25.0f64, 144.0f64); // side 24+1, tracks 24²/4
    let model = ((s + t) / (s + (t / 4.0).ceil())).powi(2);
    assert!(
        (gain - model).abs() / model < 0.05,
        "gain {gain} vs model {model}"
    );
    assert!(gain > 7.0, "gain only {gain}");
}

/// The paper's model-gain formulas themselves.
#[test]
fn model_gain_formulas() {
    assert_eq!(predictions::model_area_gain_direct(8), 16.0);
    assert_eq!(predictions::model_area_gain_folded(8), 4.0);
    assert_eq!(predictions::model_area_gain_direct(7), 12.0);
}
