//! Integration: scaling behaviours — node-size scalability (§3.2),
//! folded wire shortening (§3.1), cluster-c overhead (§3.2), and
//! family-vs-family shape relations.

use mlv_bench::{measure, measure_unchecked, measure_with};
use mlv_layout::families;
use mlv_layout::realize::RealizeOptions;
use mlv_topology::cluster::ClusterKind;

/// §3.2 node-size scalability: growing node footprints well below the
/// per-gap track budget moves the area only marginally; the growth is
/// exactly pitch-quadratic.
#[test]
fn node_size_scalability() {
    let fam = families::genhyper(&[16, 16]);
    let base = measure(&fam, 2, false);
    // base pitch: side 16 + 64 tracks (K16 collinear = 64)
    let m = measure_with(
        &fam,
        &RealizeOptions {
            layers: 2,
            node_side: Some(24),
            jog_strategy: Default::default(),
            pdk: None,
        },
        false,
    );
    let measured_ratio = m.metrics.area as f64 / base.metrics.area as f64;
    let expected = (88.0f64 / 80.0).powi(2);
    assert!(
        (measured_ratio - expected).abs() < 1e-6,
        "ratio {measured_ratio} vs pitch model {expected}"
    );
    // and it stays under 1.25 while side << tracks
    assert!(measured_ratio < 1.25);
}

/// §3.1 folding: on a large-radix torus the folded order cuts the
/// longest wire by roughly k/2 while costing few extra tracks.
#[test]
fn folding_shortens_wires() {
    let plain = measure(&families::karyn_cube(8, 2, false), 2, false);
    let folded = measure(&families::karyn_cube(8, 2, true), 2, false);
    let gain = plain.metrics.max_wire_planar as f64 / folded.metrics.max_wire_planar as f64;
    assert!(gain > 2.0, "fold gain {gain}");
    // area overhead bounded
    let overhead = folded.metrics.area as f64 / plain.metrics.area as f64;
    assert!(overhead < 2.0, "fold area overhead {overhead}");
}

/// §3.2 cluster-c: the overhead over the flat quotient torus shrinks as
/// the radix k grows at fixed c (the paper's c = o(k^{n/2-1}) regime).
#[test]
fn cluster_overhead_shrinks_with_radix() {
    let overhead = |k: usize| {
        let fam = families::kary_cluster(k, 4, 2, ClusterKind::Ring);
        let flat = families::karyn_cube(k, 4, false);
        let a = measure_unchecked(&fam, 2).metrics.area as f64;
        let b = measure_unchecked(&flat, 2).metrics.area as f64;
        a / b
    };
    let o4 = overhead(4);
    let o8 = overhead(8);
    assert!(o8 < o4, "overhead did not shrink: k=4 {o4}, k=8 {o8}");
    assert!(o8 < 2.5, "overhead too large at k=8: {o8}");
}

/// §5.2: CCC area stays within a small constant of its quotient
/// hypercube — the constant-degree network rides almost free.
#[test]
fn ccc_overhead_over_quotient_cube() {
    for n in [4usize, 5, 6] {
        let c = measure(&families::ccc(n), 2, false).metrics.area as f64;
        let h = measure(&families::hypercube(n), 2, false).metrics.area as f64;
        let overhead = c / h;
        assert!(
            overhead < 8.0,
            "CCC({n}) overhead {overhead} over its quotient cube"
        );
    }
}

/// §5.3: plain < folded < enhanced in area at every layer count, and
/// the ratios stay below the paper's worst-case constants (49/16 and
/// 100/16).
#[test]
fn variant_area_ordering() {
    for layers in [2usize, 4] {
        let plain = measure(&families::hypercube(7), layers, false).metrics.area as f64;
        let folded = measure(&families::folded_hypercube(7), layers, false)
            .metrics
            .area as f64;
        let enhanced = measure(&families::enhanced_cube(7, 5), layers, false)
            .metrics
            .area as f64;
        assert!(plain < folded && folded < enhanced);
        assert!(folded / plain <= 49.0 / 16.0 + 0.5, "{}", folded / plain);
        assert!(
            enhanced / plain <= 100.0 / 16.0 + 0.5,
            "{}",
            enhanced / plain
        );
    }
}

/// Lower-bound sanity: every measured layout sits above the trivial
/// (B/L)² bound.
#[test]
fn measured_areas_respect_lower_bounds() {
    use mlv_formulas::{bisection, bounds};
    for layers in [2usize, 4, 8] {
        let m = measure(&families::hypercube(8), layers, false);
        let bound = bounds::area_lower_bound(bisection::hypercube(8), layers);
        assert!(m.metrics.area as f64 >= bound);
        let m = measure(&families::genhyper(&[12, 12]), layers, false);
        let bound = bounds::area_lower_bound(bisection::genhyper(12, 2), layers);
        assert!(m.metrics.area as f64 >= bound);
    }
}

/// Butterfly measured/paper area ratio falls monotonically with m —
/// the N²/lg²N scaling is visible even where constants are diluted.
#[test]
fn butterfly_ratio_improves_with_m() {
    use mlv_formulas::predictions::butterfly as predict;
    let mut prev = f64::MAX;
    for m in [4usize, 6, 8, 10] {
        let fam = families::butterfly(m);
        let meas = measure_unchecked(&fam, 2);
        let ratio = meas.metrics.area as f64 / predict(m << m, 2).area;
        assert!(ratio < prev, "ratio not improving at m={m}: {ratio}");
        prev = ratio;
    }
}
